//! The counter surface exposed to the search.
//!
//! The paper's vendors provide two families of counters: performance
//! counters that every RNIC exports and nine diagnostic counters tied to
//! internal events. We expose the same shape: four performance counters and
//! nine diagnostic counters, registered into a [`CounterRegistry`] so the
//! search layer can treat them as opaque names (it never interprets them —
//! it only minimises the performance ones and maximises the diagnostic
//! ones).

use collie_sim::counters::{CounterHandle, CounterKind, CounterRegistry, CounterWriter};

/// Performance-counter names.
pub mod perf {
    /// Bytes transmitted per second (gauge over the measurement window).
    pub const TX_BYTES_PER_SEC: &str = "perf/tx_bytes_per_sec";
    /// Bytes received per second.
    pub const RX_BYTES_PER_SEC: &str = "perf/rx_bytes_per_sec";
    /// Packets transmitted per second.
    pub const TX_PACKETS_PER_SEC: &str = "perf/tx_packets_per_sec";
    /// Packets received per second.
    pub const RX_PACKETS_PER_SEC: &str = "perf/rx_packets_per_sec";

    /// All performance counters.
    pub const ALL: [&str; 4] = [
        TX_BYTES_PER_SEC,
        RX_BYTES_PER_SEC,
        TX_PACKETS_PER_SEC,
        RX_PACKETS_PER_SEC,
    ];
}

/// Diagnostic-counter names (the "nine vendor counters" of §7.2).
pub mod diag {
    /// Receive-WQE cache misses: the NIC had to fetch receive descriptors
    /// from host DRAM (the counter traced in Figure 6).
    pub const RECV_WQE_CACHE_MISS: &str = "diag/recv_wqe_cache_miss";
    /// QP-context (ICM) cache misses.
    pub const QP_CONTEXT_CACHE_MISS: &str = "diag/qp_context_cache_miss";
    /// Memory-translation-table cache misses.
    pub const MTT_CACHE_MISS: &str = "diag/mtt_cache_miss";
    /// PCIe internal back-pressure events (inbound DMA stalled on the host).
    pub const PCIE_BACKPRESSURE: &str = "diag/pcie_internal_backpressure";
    /// Receive-buffer occupancy high-watermark events.
    pub const RX_BUFFER_OCCUPANCY: &str = "diag/rx_buffer_occupancy";
    /// Transmit-side WQE fetch stalls (doorbell to WQE-read latency).
    pub const TX_WQE_FETCH_STALL: &str = "diag/tx_wqe_fetch_stall";
    /// Packet-processing pipeline saturation events.
    pub const PACKET_PROCESSING_SATURATION: &str = "diag/packet_processing_saturation";
    /// PCIe ordering stalls (a DMA blocked behind an earlier one).
    pub const PCIE_ORDERING_STALL: &str = "diag/pcie_ordering_stall";
    /// In-NIC incast pressure (loopback and receive traffic colliding).
    pub const INTERNAL_INCAST: &str = "diag/internal_incast";

    /// All diagnostic counters.
    pub const ALL: [&str; 9] = [
        RECV_WQE_CACHE_MISS,
        QP_CONTEXT_CACHE_MISS,
        MTT_CACHE_MISS,
        PCIE_BACKPRESSURE,
        RX_BUFFER_OCCUPANCY,
        TX_WQE_FETCH_STALL,
        PACKET_PROCESSING_SATURATION,
        PCIE_ORDERING_STALL,
        INTERNAL_INCAST,
    ];

    /// Position of a diagnostic counter name in [`ALL`], used to accumulate
    /// per-counter values in a plain array during evaluation. Names that
    /// come from the constants above compare by pointer before falling back
    /// to a byte compare.
    pub fn index_of(name: &str) -> Option<usize> {
        ALL.iter().position(|candidate| {
            (std::ptr::eq(candidate.as_ptr(), name.as_ptr()) && candidate.len() == name.len())
                || *candidate == name
        })
    }
}

/// Fabric gauge names: cross-host observables of a multi-host campaign.
///
/// These are not RNIC hardware counters — they are derived from the
/// switch's per-port pause accounting and the victim/culprit flow
/// bookkeeping the fabric engine keeps — but they are published through the
/// same [`CounterSnapshot`](collie_sim::counters::CounterSnapshot) surface
/// so the search layer can treat them as opaque signals, exactly as it
/// treats the vendor counters. Ratios are raw fractions in [0, 1].
pub mod fabric {
    /// Achieved / expected throughput of the worst victim flow (a benign
    /// flow from a pause-propagated sender port to a healthy receiver).
    pub const VICTIM_THROUGHPUT_FRAC: &str = "fabric/victim_throughput_frac";
    /// Pause-duration ratio observed on the victim flow's sender port.
    pub const VICTIM_PAUSE_RATIO: &str = "fabric/victim_pause_ratio";
    /// Achieved spec fraction of the culprit host's own traffic.
    pub const CULPRIT_THROUGHPUT_FRAC: &str = "fabric/culprit_throughput_frac";
    /// Fraction of switch ports whose pause ratio breaches the monitor
    /// threshold (how far the storm spread).
    pub const PAUSE_SPREAD: &str = "fabric/pause_spread";
    /// Worst per-port pause-duration ratio across the switch.
    pub const MAX_PORT_PAUSE: &str = "fabric/max_port_pause";

    /// All fabric gauges.
    pub const ALL: [&str; 5] = [
        VICTIM_THROUGHPUT_FRAC,
        VICTIM_PAUSE_RATIO,
        CULPRIT_THROUGHPUT_FRAC,
        PAUSE_SPREAD,
        MAX_PORT_PAUSE,
    ];
}

/// Handles to every registered counter of one subsystem.
///
/// Each handle is stored next to the `&'static` name it was registered
/// under, so the by-name entry points resolve with a plain string compare
/// instead of asking the handle (which takes the registry lock and clones
/// the name) — `Subsystem::evaluate` goes through these on every
/// experiment.
#[derive(Debug, Clone)]
pub struct RnicCounters {
    registry: CounterRegistry,
    perf_handles: Vec<(&'static str, CounterHandle)>,
    diag_handles: Vec<(&'static str, CounterHandle)>,
}

impl RnicCounters {
    /// Register the full counter set into `registry`.
    pub fn register(registry: &CounterRegistry) -> Self {
        RnicCounters {
            registry: registry.clone(),
            perf_handles: perf::ALL
                .iter()
                .map(|name| (*name, registry.register(name, CounterKind::Performance)))
                .collect(),
            diag_handles: diag::ALL
                .iter()
                .map(|name| (*name, registry.register(name, CounterKind::Diagnostic)))
                .collect(),
        }
    }

    /// Set a performance counter by name (no-op for unknown names).
    pub fn set_perf(&self, name: &str, value: f64) {
        if let Some((_, h)) = self.perf_handles.iter().find(|(n, _)| *n == name) {
            h.set(value);
        }
    }

    /// Set a diagnostic counter by name (no-op for unknown names).
    pub fn set_diag(&self, name: &str, value: f64) {
        if let Some((_, h)) = self.diag_handles.iter().find(|(n, _)| *n == name) {
            h.set(value);
        }
    }

    /// Add to a diagnostic counter by name (no-op for unknown names).
    pub fn add_diag(&self, name: &str, delta: f64) {
        if let Some((_, h)) = self.diag_handles.iter().find(|(n, _)| *n == name) {
            h.add(delta);
        }
    }

    /// Zero every counter (between experiments), under one lock.
    pub fn reset(&self) {
        let mut writer = self.registry.writer();
        for (_, h) in self.perf_handles.iter().chain(self.diag_handles.iter()) {
            writer.set(h, 0.0);
        }
    }

    /// Start a batched update: every set/add through the returned batch is
    /// applied under a single registry lock acquisition. Value-for-value
    /// identical to the unbatched entry points.
    pub fn batch(&self) -> RnicCounterBatch<'_> {
        RnicCounterBatch {
            counters: self,
            writer: self.registry.writer(),
        }
    }
}

/// One locked batch of counter updates (see [`RnicCounters::batch`]).
pub struct RnicCounterBatch<'a> {
    counters: &'a RnicCounters,
    writer: CounterWriter<'a>,
}

impl RnicCounterBatch<'_> {
    /// Batched [`RnicCounters::set_perf`].
    pub fn set_perf(&mut self, name: &str, value: f64) {
        if let Some((_, h)) = self.counters.perf_handles.iter().find(|(n, _)| *n == name) {
            self.writer.set(h, value);
        }
    }

    /// Batched [`RnicCounters::add_diag`].
    pub fn add_diag(&mut self, name: &str, delta: f64) {
        if let Some((_, h)) = self.counters.diag_handles.iter().find(|(n, _)| *n == name) {
            self.writer.add(h, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_thirteen_counters() {
        let registry = CounterRegistry::new();
        let _c = RnicCounters::register(&registry);
        assert_eq!(registry.len(), 13);
        assert_eq!(registry.names(CounterKind::Diagnostic).len(), 9);
        assert_eq!(registry.names(CounterKind::Performance).len(), 4);
    }

    #[test]
    fn set_and_add_by_name() {
        let registry = CounterRegistry::new();
        let c = RnicCounters::register(&registry);
        c.set_perf(perf::TX_BYTES_PER_SEC, 1e9);
        c.set_diag(diag::RECV_WQE_CACHE_MISS, 5.0);
        c.add_diag(diag::RECV_WQE_CACHE_MISS, 3.0);
        let snap = registry.snapshot();
        assert_eq!(snap.value(perf::TX_BYTES_PER_SEC), Some(1e9));
        assert_eq!(snap.value(diag::RECV_WQE_CACHE_MISS), Some(8.0));
    }

    #[test]
    fn unknown_names_are_ignored() {
        let registry = CounterRegistry::new();
        let c = RnicCounters::register(&registry);
        // collie-lint: begin(counter-name, reason = "deliberately unregistered names proving unknown-counter writes are no-ops")
        c.set_perf("perf/nope", 1.0);
        c.set_diag("diag/nope", 1.0);
        assert!(registry.get("perf/nope").is_none());
        // collie-lint: end(counter-name)
    }

    #[test]
    fn batched_updates_match_the_unbatched_entry_points() {
        let registry = CounterRegistry::new();
        let c = RnicCounters::register(&registry);
        {
            let mut batch = c.batch();
            batch.set_perf(perf::TX_BYTES_PER_SEC, 2e9);
            batch.add_diag(diag::MTT_CACHE_MISS, 4.0);
            batch.add_diag(diag::MTT_CACHE_MISS, 1.5);
            // collie-lint: begin(counter-name, reason = "deliberately unregistered names proving batched unknown-counter writes stay no-ops")
            batch.set_perf("perf/nope", 1.0); // unknown names stay no-ops
            batch.add_diag("diag/nope", 1.0);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.value(perf::TX_BYTES_PER_SEC), Some(2e9));
        assert_eq!(snap.value(diag::MTT_CACHE_MISS), Some(5.5));
        assert!(snap.value("perf/nope").is_none());
        // collie-lint: end(counter-name)
    }

    #[test]
    fn reset_zeroes_all() {
        let registry = CounterRegistry::new();
        let c = RnicCounters::register(&registry);
        c.set_perf(perf::RX_BYTES_PER_SEC, 7.0);
        c.set_diag(diag::INTERNAL_INCAST, 7.0);
        c.reset();
        let snap = registry.snapshot();
        assert!(snap.iter().all(|(_, _, v)| v == 0.0));
    }

    #[test]
    fn double_registration_is_idempotent() {
        let registry = CounterRegistry::new();
        let _a = RnicCounters::register(&registry);
        let _b = RnicCounters::register(&registry);
        assert_eq!(registry.len(), 13);
    }
}
