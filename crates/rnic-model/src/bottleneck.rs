//! Bottleneck stress rules.
//!
//! Appendix A of the paper groups the eighteen anomalies into six root-cause
//! families (receive-WQE cache misses, ICM/context cache misses, PCIe
//! ordering, packet-processing limits, host-topology latency, in-NIC
//! incast). The real mechanisms live inside black-box hardware; what the
//! paper documents — and what a reproduction must preserve — is the
//! *trigger surface*: which combinations of workload features push the
//! subsystem over the edge, which diagnostic counter rises on the way
//! there, and what the end-to-end symptom is.
//!
//! Each rule in [`evaluate_rules`] encodes one such surface as a set of graded
//! condition factors. A factor is ~0 when the feature is far from its
//! trigger threshold and reaches 1.0 at the threshold; the rule's *stress*
//! is the weakest factor (every necessary condition must hold). Stress below
//! 1.0 still feeds the mapped diagnostic counter proportionally — that
//! gradient is exactly what lets Collie's simulated annealing walk towards
//! anomalies — while stress at or above 1.0 additionally applies the rule's
//! end-to-end effect (pause frames at the receiver, or a sender throughput
//! collapse with no pause frames).
//!
//! The thresholds follow the necessary-condition columns of Table 2; the
//! severities follow the pause-duration ratios and throughput drops quoted
//! in Appendix A. They are calibration constants of the simulator, not
//! vendor data.

use crate::counters::diag;
use crate::spec::{RnicSpec, RnicVendor};
use crate::workload::{Direction, FlowSpec, Opcode, Transport, WorkloadSpec};
use collie_host::topology::{DmaDirection, HostConfig};
use serde::{Deserialize, Serialize};

/// Everything a rule may inspect when scoring one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowContext<'a> {
    /// The flow being scored.
    pub flow: &'a FlowSpec,
    /// The complete workload the flow belongs to (for bidirectional and
    /// co-existence conditions).
    pub workload: &'a WorkloadSpec,
    /// The RNIC model of both hosts.
    pub spec: &'a RnicSpec,
    /// The host transmitting this flow's payload.
    pub sender_host: &'a HostConfig,
    /// The host receiving this flow's payload.
    pub receiver_host: &'a HostConfig,
}

/// The end-to-end consequence of a triggered rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Effect {
    /// The receiver cannot drain the flow; PFC pause frames with roughly
    /// this pause-duration ratio are emitted by the receiving host and the
    /// flow's throughput drops accordingly.
    ReceiverPause {
        /// Approximate pause-duration ratio when fully triggered.
        severity: f64,
    },
    /// The sender's achievable rate is multiplied by this factor; no pause
    /// frames are generated (the "low throughput" symptom of Table 2).
    SenderThrottle {
        /// Multiplier in (0, 1) applied to the sender's achievable rate.
        factor: f64,
    },
}

/// The outcome of evaluating one rule against one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressReport {
    /// Stable rule identifier; rule `collie/<n>` reproduces paper anomaly
    /// `#<n>`.
    pub rule: &'static str,
    /// The diagnostic counter this rule's stress feeds.
    pub counter: &'static str,
    /// The weakest condition factor, clamped to [0, 1.2].
    pub stress: f64,
    /// What happens when the rule is fully triggered.
    pub effect: Effect,
}

impl StressReport {
    /// True if every necessary condition holds.
    pub fn triggered(&self) -> bool {
        self.stress >= 1.0
    }
}

/// Graded "value ≥ threshold" factor: 0 far below, 1.0 at the threshold,
/// capped slightly above so one over-satisfied condition cannot compensate
/// for another.
fn at_least(value: f64, threshold: f64) -> f64 {
    if threshold <= 0.0 {
        return 1.2;
    }
    (value / threshold).clamp(0.0, 1.2)
}

/// Graded "value ≤ threshold" factor.
fn at_most(value: f64, threshold: f64) -> f64 {
    if value <= 0.0 {
        return 1.2;
    }
    (threshold / value).clamp(0.0, 1.2)
}

/// Hard boolean condition. A false gate contributes a small non-zero value
/// so that a workload "one discrete flip away" from the trigger still
/// registers faint counter activity, but can never reach the trigger.
fn gate(condition: bool) -> f64 {
    if condition {
        1.2
    } else {
        0.1
    }
}

/// Stress = the weakest condition factor.
fn stress_of(factors: &[f64]) -> f64 {
    factors
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .clamp(0.0, 1.2)
}

/// Total QPs across the workload on flows matching a transport/opcode pair.
fn matching_qps(workload: &WorkloadSpec, transport: Transport, opcode: Opcode) -> f64 {
    workload
        .flows
        .iter()
        .filter(|f| f.transport == transport && f.opcode == opcode)
        .map(|f| f.num_qps as f64)
        .sum()
}

/// True if flows with this transport/opcode run in both directions.
fn bidirectional_for(workload: &WorkloadSpec, transport: Transport, opcode: Opcode) -> bool {
    let dir = |d: Direction| {
        workload
            .flows
            .iter()
            .any(|f| f.transport == transport && f.opcode == opcode && f.direction == d)
    };
    dir(Direction::AToB) && dir(Direction::BToA)
}

/// Evaluate every applicable rule against one flow.
pub fn evaluate_rules(ctx: &FlowContext<'_>) -> Vec<StressReport> {
    let mut reports = Vec::new();
    match ctx.spec.model.vendor() {
        RnicVendor::Mellanox => {
            if ctx.spec.model.is_cx6() {
                mellanox_cx6_rules(ctx, &mut reports);
            }
            host_topology_rules(ctx, &mut reports);
        }
        RnicVendor::Broadcom => {
            broadcom_rules(ctx, &mut reports);
            host_topology_rules(ctx, &mut reports);
        }
    }
    reports
}

/// Rules #1–#10: the ConnectX-6 anomalies of Appendix A.1 that depend only
/// on the workload (not the host platform).
fn mellanox_cx6_rules(ctx: &FlowContext<'_>, out: &mut Vec<StressReport>) {
    let f = ctx.flow;
    let w = ctx.workload;
    let msg = f.mean_message_bytes();

    // Anomaly #1: UD SEND, large WQE batch, long work queue -> pause storm.
    out.push(StressReport {
        rule: "collie/1",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Ud && f.opcode == Opcode::Send),
            at_least(f.wqe_batch as f64, 64.0),
            at_least(f.recv_queue_depth as f64, 256.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.20 },
    });

    // Anomaly #2: UD SEND, small batch, very long WQ, small messages, a few
    // connections -> throughput drop without pause frames.
    out.push(StressReport {
        rule: "collie/2",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Ud && f.opcode == Opcode::Send),
            at_most(f.wqe_batch as f64, 8.0),
            at_least(f.recv_queue_depth as f64, 1024.0),
            at_most(msg, 1024.0),
            at_least(f.num_qps as f64, 16.0),
        ]),
        effect: Effect::SenderThrottle { factor: 0.72 },
    });

    // Anomaly #3: RC READ with large messages at a small MTU -> pause.
    out.push(StressReport {
        rule: "collie/3",
        counter: diag::PACKET_PROCESSING_SATURATION,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Read),
            at_most(f.mtu as f64, 1024.0),
            at_least(f.messages.max_size() as f64, 16.0 * 1024.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.10 },
    });

    // Anomaly #4: bidirectional RC READ, large WQE batch, long SG list, a
    // few hundred connections -> pause even at MTU 4096.
    out.push(StressReport {
        rule: "collie/4",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Read),
            gate(bidirectional_for(w, Transport::Rc, Opcode::Read)),
            at_least(f.wqe_batch as f64, 32.0),
            at_least(f.sge_per_wqe as f64, 4.0),
            at_least(matching_qps(w, Transport::Rc, Opcode::Read), 160.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.30 },
    });

    // Anomaly #5: RC SEND, small MTU, large batch, long WQ, medium
    // messages -> pause.
    out.push(StressReport {
        rule: "collie/5",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Send),
            at_most(f.mtu as f64, 1024.0),
            at_least(f.wqe_batch as f64, 64.0),
            at_least(f.recv_queue_depth as f64, 1024.0),
            at_least(msg, 2048.0),
            at_most(msg, 8192.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.15 },
    });

    // Anomaly #6: RC SEND, small MTU, small batch, SG list >= 2, long WQ,
    // small messages, a few connections -> throughput drop, no pause.
    out.push(StressReport {
        rule: "collie/6",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Send),
            at_most(f.mtu as f64, 1024.0),
            at_most(f.wqe_batch as f64, 16.0),
            at_least(f.sge_per_wqe as f64, 2.0),
            at_least(f.recv_queue_depth as f64, 1024.0),
            at_most(msg, 1024.0),
            at_least(f.num_qps as f64, 32.0),
        ]),
        effect: Effect::SenderThrottle { factor: 0.70 },
    });

    // Anomaly #7: RC WRITE, no batching, small messages, shallow WQ, many
    // hundreds of QPs -> QP-context thrash, throughput drop.
    out.push(StressReport {
        rule: "collie/7",
        counter: diag::QP_CONTEXT_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Write),
            at_most(f.wqe_batch as f64, 2.0),
            at_most(msg, 1024.0),
            at_most(f.send_queue_depth as f64, 16.0),
            at_least(f.num_qps as f64, 480.0),
        ]),
        effect: Effect::SenderThrottle { factor: 0.75 },
    });

    // Anomaly #8: RC WRITE, no batching, small messages, very many MRs ->
    // translation-cache thrash, throughput drop.
    out.push(StressReport {
        rule: "collie/8",
        counter: diag::MTT_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Write),
            at_most(f.wqe_batch as f64, 2.0),
            at_most(msg, 1024.0),
            at_least(f.total_mrs() as f64, 12_000.0),
        ]),
        effect: Effect::SenderThrottle { factor: 0.75 },
    });

    // Anomaly #9: bidirectional traffic, SG lists mixing small and large
    // elements, on a host whose RNIC is not a relaxed-ordering PCIe device.
    out.push(StressReport {
        rule: "collie/9",
        counter: diag::PCIE_ORDERING_STALL,
        stress: stress_of(&[
            gate(w.is_bidirectional()),
            gate(!ctx.receiver_host.pcie_settings.relaxed_ordering),
            at_least(f.sge_per_wqe as f64, 3.0),
            gate(f.messages.mixes_small_and_large(1024, 64 * 1024)),
        ]),
        effect: Effect::ReceiverPause { severity: 0.25 },
    });

    // Anomaly #10: bidirectional RC WRITE, large batches, a mixture of many
    // short and some long messages, a few hundred QPs -> the shared packet
    // processing component saturates and pause frames follow.
    out.push(StressReport {
        rule: "collie/10",
        counter: diag::PACKET_PROCESSING_SATURATION,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Write),
            gate(bidirectional_for(w, Transport::Rc, Opcode::Write)),
            gate(!ctx.spec.firmware_bidir_fix),
            at_least(f.wqe_batch as f64, 64.0),
            gate(f.messages.mixes_small_and_large(1024, 64 * 1024)),
            at_least(matching_qps(w, Transport::Rc, Opcode::Write), 320.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.20 },
    });
}

/// Rules #11–#13: anomalies rooted in the host platform rather than the NIC
/// silicon (cross-socket forwarding, ACS misrouting, loopback incast). They
/// apply to any RNIC model because the limiting component is the host.
fn host_topology_rules(ctx: &FlowContext<'_>, out: &mut Vec<StressReport>) {
    let f = ctx.flow;
    let w = ctx.workload;

    let src_path = ctx
        .sender_host
        .dma_path(f.src_memory, DmaDirection::FromMemory);
    let dst_path = ctx
        .receiver_host
        .dma_path(f.dst_memory, DmaDirection::ToMemory);

    // Anomaly #11: bidirectional cross-socket traffic on chiplet-based
    // servers whose I/O die forwards inbound PCIe writes poorly.
    out.push(StressReport {
        rule: "collie/11",
        counter: diag::PCIE_BACKPRESSURE,
        stress: stress_of(&[
            gate(w.is_bidirectional()),
            gate(ctx.receiver_host.cpu.chiplets_per_socket > 1),
            gate(src_path.crosses_socket || dst_path.crosses_socket),
        ]),
        effect: Effect::ReceiverPause { severity: 0.157 },
    });

    // Anomaly #12: GPU-Direct traffic whose peer-to-peer path is detoured
    // through the root complex (ACS misconfiguration or an unfortunate GPU
    // placement).
    out.push(StressReport {
        rule: "collie/12",
        counter: diag::PCIE_BACKPRESSURE,
        stress: stress_of(&[
            gate(f.src_memory.is_gpu() || f.dst_memory.is_gpu()),
            gate(
                (f.src_memory.is_gpu() && src_path.via_root_complex)
                    || (f.dst_memory.is_gpu() && dst_path.via_root_complex),
            ),
        ]),
        effect: Effect::ReceiverPause { severity: 0.15 },
    });

    // Anomaly #13: loopback traffic co-existing with receive traffic on the
    // same host, on an RNIC without a loopback rate limiter.
    let receiver = f.direction.receiver_host();
    let remote_rx = w
        .flows
        .iter()
        .any(|other| !other.direction.is_loopback() && other.direction.receiver_host() == receiver);
    out.push(StressReport {
        rule: "collie/13",
        counter: diag::INTERNAL_INCAST,
        stress: stress_of(&[
            gate(f.direction.is_loopback()),
            gate(remote_rx),
            gate(!ctx.spec.loopback_rate_limited),
        ]),
        effect: Effect::ReceiverPause { severity: 0.18 },
    });
}

/// Rules #14–#18: the Broadcom P2100G anomalies of Appendix A.2.
fn broadcom_rules(ctx: &FlowContext<'_>, out: &mut Vec<StressReport>) {
    let f = ctx.flow;
    let w = ctx.workload;
    let msg = f.mean_message_bytes();
    let rc_qps: f64 = w
        .flows
        .iter()
        .filter(|x| x.transport == Transport::Rc)
        .map(|x| x.num_qps as f64)
        .sum();

    // Anomaly #14: bidirectional RC with very many connections and a large
    // MTU -> throughput drop without pause frames.
    out.push(StressReport {
        rule: "collie/14",
        counter: diag::QP_CONTEXT_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc),
            gate(w.is_bidirectional()),
            at_least(f.mtu as f64, 4096.0),
            at_least(f.sge_per_wqe as f64, 4.0),
            at_least(rc_qps, 1300.0),
        ]),
        effect: Effect::SenderThrottle { factor: 0.70 },
    });

    // Anomaly #15: UD SEND with a long WQ and tens of connections -> pause.
    out.push(StressReport {
        rule: "collie/15",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Ud && f.opcode == Opcode::Send),
            at_least(f.recv_queue_depth as f64, 64.0),
            at_least(f.num_qps as f64, 32.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.15 },
    });

    // Anomaly #16: RC READ, many connections, batched WQEs, small MTU ->
    // pause.
    out.push(StressReport {
        rule: "collie/16",
        counter: diag::PACKET_PROCESSING_SATURATION,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Read),
            at_most(f.mtu as f64, 1024.0),
            at_least(f.wqe_batch as f64, 8.0),
            at_least(f.num_qps as f64, 500.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.15 },
    });

    // Anomaly #17: RC SEND, small batch, long WQ, short messages, tens of
    // connections -> pause (fixed by the vendor register setting).
    out.push(StressReport {
        rule: "collie/17",
        counter: diag::RECV_WQE_CACHE_MISS,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Send),
            gate(!ctx.spec.vendor_register_fix),
            at_most(f.wqe_batch as f64, 16.0),
            at_least(f.recv_queue_depth as f64, 128.0),
            at_most(msg, 1024.0),
            at_least(f.num_qps as f64, 64.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.12 },
    });

    // Anomaly #18: bidirectional RC WRITE, large batch, small MTU, modest
    // message sizes, a few dozen connections -> pause (fixed by the vendor
    // register setting).
    out.push(StressReport {
        rule: "collie/18",
        counter: diag::PACKET_PROCESSING_SATURATION,
        stress: stress_of(&[
            gate(f.transport == Transport::Rc && f.opcode == Opcode::Write),
            gate(bidirectional_for(w, Transport::Rc, Opcode::Write)),
            gate(!ctx.spec.vendor_register_fix),
            at_most(f.mtu as f64, 1024.0),
            at_least(f.wqe_batch as f64, 16.0),
            at_most(f.messages.max_size() as f64, 64.0 * 1024.0),
            at_least(matching_qps(w, Transport::Rc, Opcode::Write), 30.0),
        ]),
        effect: Effect::ReceiverPause { severity: 0.15 },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RnicModel;
    use crate::workload::MessagePattern;
    use collie_host::presets;
    use collie_sim::units::ByteSize;

    fn cx6_ctx_parts() -> (RnicSpec, HostConfig, HostConfig) {
        let spec = RnicModel::Cx6Dx200.spec();
        let host = presets::intel_xeon_gpu_host("f", ByteSize::from_gib(2048), true);
        (spec, host.clone(), host)
    }

    fn reports_for(
        flow: &FlowSpec,
        workload: &WorkloadSpec,
        spec: &RnicSpec,
        a: &HostConfig,
        b: &HostConfig,
    ) -> Vec<StressReport> {
        let (sender, receiver) = if flow.direction.sender_host() == 0 {
            (a, b)
        } else {
            (b, a)
        };
        let (sender, receiver) = if flow.direction.is_loopback() {
            (a, a)
        } else {
            (sender, receiver)
        };
        evaluate_rules(&FlowContext {
            flow,
            workload,
            spec,
            sender_host: sender,
            receiver_host: receiver,
        })
    }

    fn triggered_rules(reports: &[StressReport]) -> Vec<&'static str> {
        reports
            .iter()
            .filter(|r| r.triggered())
            .map(|r| r.rule)
            .collect()
    }

    #[test]
    fn anomaly_1_triggers_on_its_concrete_setting() {
        let (spec, a, b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Ud;
        flow.opcode = Opcode::Send;
        flow.wqe_batch = 64;
        flow.recv_queue_depth = 256;
        flow.send_queue_depth = 256;
        flow.mtu = 2048;
        flow.messages = MessagePattern::uniform(2048);
        let w = WorkloadSpec::single(flow.clone());
        let reports = reports_for(&flow, &w, &spec, &a, &b);
        assert!(triggered_rules(&reports).contains(&"collie/1"));
        // Breaking the batch-size condition un-triggers it.
        flow.wqe_batch = 8;
        let w2 = WorkloadSpec::single(flow.clone());
        let reports2 = reports_for(&flow, &w2, &spec, &a, &b);
        assert!(!triggered_rules(&reports2).contains(&"collie/1"));
    }

    #[test]
    fn anomaly_1_does_not_trigger_for_rc() {
        let (spec, a, b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Rc;
        flow.opcode = Opcode::Send;
        flow.wqe_batch = 64;
        flow.recv_queue_depth = 256;
        let w = WorkloadSpec::single(flow.clone());
        let reports = reports_for(&flow, &w, &spec, &a, &b);
        assert!(!triggered_rules(&reports).contains(&"collie/1"));
    }

    #[test]
    fn stress_rises_towards_the_trigger() {
        let (spec, a, b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Ud;
        flow.opcode = Opcode::Send;
        flow.recv_queue_depth = 256;
        let mut last = -1.0;
        for batch in [4u32, 16, 32, 48, 64] {
            flow.wqe_batch = batch;
            let w = WorkloadSpec::single(flow.clone());
            let reports = reports_for(&flow, &w, &spec, &a, &b);
            let r1 = reports.iter().find(|r| r.rule == "collie/1").unwrap();
            assert!(
                r1.stress >= last,
                "stress should not decrease as batch grows"
            );
            last = r1.stress;
        }
        assert!(last >= 1.0);
    }

    #[test]
    fn anomaly_4_requires_bidirectional_read() {
        let (spec, a, b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Rc;
        flow.opcode = Opcode::Read;
        flow.wqe_batch = 128;
        flow.sge_per_wqe = 4;
        flow.num_qps = 80;
        flow.messages = MessagePattern::uniform(128);
        let mut reverse = flow.clone();
        reverse.direction = Direction::BToA;

        let unidirectional = WorkloadSpec::single(flow.clone());
        let reports = reports_for(&flow, &unidirectional, &spec, &a, &b);
        assert!(!triggered_rules(&reports).contains(&"collie/4"));

        let bidirectional = WorkloadSpec {
            flows: vec![flow.clone(), reverse],
        };
        let reports = reports_for(&flow, &bidirectional, &spec, &a, &b);
        assert!(triggered_rules(&reports).contains(&"collie/4"));
    }

    #[test]
    fn anomaly_9_requires_strict_ordering_host() {
        let (spec, mut a, mut b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.sge_per_wqe = 3;
        flow.messages = MessagePattern::new(vec![128, 64 * 1024, 1024]);
        let mut reverse = flow.clone();
        reverse.direction = Direction::BToA;
        let w = WorkloadSpec {
            flows: vec![flow.clone(), reverse],
        };

        // Relaxed ordering (the fix): no trigger.
        a.pcie_settings.relaxed_ordering = true;
        b.pcie_settings.relaxed_ordering = true;
        let reports = reports_for(&flow, &w, &spec, &a, &b);
        assert!(!triggered_rules(&reports).contains(&"collie/9"));

        // Strict ordering: triggers.
        a.pcie_settings.relaxed_ordering = false;
        b.pcie_settings.relaxed_ordering = false;
        let reports = reports_for(&flow, &w, &spec, &a, &b);
        assert!(triggered_rules(&reports).contains(&"collie/9"));
    }

    #[test]
    fn anomaly_13_needs_loopback_plus_remote_receive() {
        let (spec, a, b) = cx6_ctx_parts();
        let loopback = FlowSpec::basic(Direction::LoopbackA);
        let inbound = FlowSpec::basic(Direction::BToA);

        let both = WorkloadSpec {
            flows: vec![loopback.clone(), inbound.clone()],
        };
        let reports = reports_for(&loopback, &both, &spec, &a, &b);
        assert!(triggered_rules(&reports).contains(&"collie/13"));

        let lonely = WorkloadSpec::single(loopback.clone());
        let reports = reports_for(&loopback, &lonely, &spec, &a, &b);
        assert!(!triggered_rules(&reports).contains(&"collie/13"));
    }

    #[test]
    fn broadcom_rules_only_fire_on_broadcom() {
        let spec_bc = RnicModel::P2100G.spec();
        let spec_mlx = RnicModel::Cx6Dx200.spec();
        let host = presets::intel_xeon_host("h", 2, ByteSize::from_gib(384), false);
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Ud;
        flow.opcode = Opcode::Send;
        flow.num_qps = 32;
        flow.recv_queue_depth = 64;
        let w = WorkloadSpec::single(flow.clone());

        let ctx_bc = FlowContext {
            flow: &flow,
            workload: &w,
            spec: &spec_bc,
            sender_host: &host,
            receiver_host: &host,
        };
        let ctx_mlx = FlowContext {
            flow: &flow,
            workload: &w,
            spec: &spec_mlx,
            sender_host: &host,
            receiver_host: &host,
        };
        let bc_rules = triggered_rules(&evaluate_rules(&ctx_bc));
        assert!(bc_rules.contains(&"collie/15"));
        let mlx_rules: Vec<_> = evaluate_rules(&ctx_mlx).iter().map(|r| r.rule).collect();
        assert!(!mlx_rules.contains(&"collie/15"));
    }

    #[test]
    fn vendor_register_fix_suppresses_17_and_18() {
        let mut spec = RnicModel::P2100G.spec();
        let host = presets::intel_xeon_host("h", 2, ByteSize::from_gib(384), false);
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Rc;
        flow.opcode = Opcode::Send;
        flow.wqe_batch = 1;
        flow.recv_queue_depth = 128;
        flow.num_qps = 80;
        flow.messages = MessagePattern::uniform(1024);
        let w = WorkloadSpec::single(flow.clone());

        let triggered_before = {
            let ctx = FlowContext {
                flow: &flow,
                workload: &w,
                spec: &spec,
                sender_host: &host,
                receiver_host: &host,
            };
            triggered_rules(&evaluate_rules(&ctx)).contains(&"collie/17")
        };
        assert!(triggered_before);

        spec.vendor_register_fix = true;
        let ctx = FlowContext {
            flow: &flow,
            workload: &w,
            spec: &spec,
            sender_host: &host,
            receiver_host: &host,
        };
        assert!(!triggered_rules(&evaluate_rules(&ctx)).contains(&"collie/17"));
    }

    #[test]
    fn firmware_upgrade_suppresses_anomaly_10() {
        let (mut spec, a, b) = cx6_ctx_parts();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.transport = Transport::Rc;
        flow.opcode = Opcode::Write;
        flow.wqe_batch = 64;
        flow.num_qps = 320;
        flow.messages = MessagePattern::new(vec![64 * 1024, 128, 128, 128]);
        let mut reverse = flow.clone();
        reverse.direction = Direction::BToA;
        let w = WorkloadSpec {
            flows: vec![flow.clone(), reverse],
        };

        let before = reports_for(&flow, &w, &spec, &a, &b);
        assert!(triggered_rules(&before).contains(&"collie/10"));

        spec.firmware_bidir_fix = true;
        let after = reports_for(&flow, &w, &spec, &a, &b);
        assert!(!triggered_rules(&after).contains(&"collie/10"));
    }

    #[test]
    fn every_report_has_sane_fields() {
        let (spec, a, b) = cx6_ctx_parts();
        let flow = FlowSpec::basic(Direction::AToB);
        let w = WorkloadSpec::single(flow.clone());
        for r in reports_for(&flow, &w, &spec, &a, &b) {
            assert!((0.0..=1.2).contains(&r.stress), "{}: {}", r.rule, r.stress);
            assert!(diag::ALL.contains(&r.counter));
            match r.effect {
                Effect::ReceiverPause { severity } => assert!((0.0..=1.0).contains(&severity)),
                Effect::SenderThrottle { factor } => assert!((0.0..1.0).contains(&factor)),
            }
        }
    }
}
