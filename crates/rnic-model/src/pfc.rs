//! PFC pause-frame generation.
//!
//! RoCEv2 relies on Priority Flow Control: when the RNIC cannot drain its
//! receive buffer as fast as packets arrive, it asks the upstream switch
//! port to pause. The externally observable quantity — and the one the
//! anomaly monitor thresholds — is the *pause duration ratio*: the fraction
//! of wall-clock time the switch port was told to stay quiet (a ratio of 1 %
//! means 10 ms of pause per second).
//!
//! In the fluid model a receiver that can only drain `drain` while the
//! sender could otherwise push `offered` must pause the link for the
//! complementary fraction of time, so the ratio falls straight out of the
//! two rates. A small grace margin absorbs the transient pauses the paper
//! notes are normal right after connections are set up.

use collie_sim::units::BitRate;
use serde::{Deserialize, Serialize};

/// Pause behaviour computed for one receiving host over one measurement
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PauseAccount {
    /// Fraction of the window the host's RNIC kept the switch port paused.
    pub pause_ratio: f64,
}

impl PauseAccount {
    /// No pauses.
    pub const NONE: PauseAccount = PauseAccount { pause_ratio: 0.0 };

    /// Pause ratio needed to reconcile an offered rate with a smaller
    /// drain rate. `grace` is the deficit fraction absorbed without
    /// pausing (start-up transients, elastic buffering); the default
    /// subsystem uses 2 %.
    pub fn from_rates(offered: BitRate, drain: BitRate, grace: f64) -> PauseAccount {
        let offered_bps = offered.bits_per_sec();
        let drain_bps = drain.bits_per_sec();
        if offered_bps <= 0.0 || drain_bps >= offered_bps {
            return PauseAccount::NONE;
        }
        let deficit = 1.0 - drain_bps / offered_bps;
        let ratio = (deficit - grace.max(0.0)).max(0.0);
        PauseAccount {
            pause_ratio: ratio.clamp(0.0, 1.0),
        }
    }

    /// Combine pause pressure from several independent causes on the same
    /// port. Pause times do not overlap perfectly, so we use the
    /// complement-product combination (1 − Π(1 − rᵢ)) rather than a sum,
    /// which also keeps the result in [0, 1].
    pub fn combine(accounts: &[PauseAccount]) -> PauseAccount {
        let mut quiet = 1.0;
        for a in accounts {
            quiet *= 1.0 - a.pause_ratio.clamp(0.0, 1.0);
        }
        PauseAccount {
            pause_ratio: 1.0 - quiet,
        }
    }

    /// Add an explicit pause contribution (from a triggered bottleneck
    /// rule) to this account.
    pub fn with_extra(self, extra_ratio: f64) -> PauseAccount {
        PauseAccount::combine(&[
            self,
            PauseAccount {
                pause_ratio: extra_ratio.clamp(0.0, 1.0),
            },
        ])
    }

    /// The pause an upstream *sender* port observes when this account's
    /// pause is relayed through the lossless switch.
    ///
    /// PFC pause frames are quantized (whole pause quanta per frame) and the
    /// switch pauses its ingress ports against a shared-buffer threshold
    /// with hysteresis, so the upstream port is quiet for *longer* than the
    /// receiver's own deficit; the surplus grows with how many senders share
    /// the congested egress. `amplification >= 1` carries that factor (1 =
    /// lossless relay, no surplus). The surplus is composed with the base
    /// pause via [`PauseAccount::combine`], keeping the result in [0, 1]
    /// and monotone in both the base ratio and the amplification.
    pub fn propagated(self, amplification: f64) -> PauseAccount {
        let base = self.pause_ratio.clamp(0.0, 1.0);
        let surplus = base * (amplification.max(1.0) - 1.0);
        self.with_extra(surplus.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_pause_when_drain_keeps_up() {
        let p =
            PauseAccount::from_rates(BitRate::from_gbps(100.0), BitRate::from_gbps(100.0), 0.02);
        assert_eq!(p.pause_ratio, 0.0);
        let p = PauseAccount::from_rates(BitRate::from_gbps(50.0), BitRate::from_gbps(100.0), 0.02);
        assert_eq!(p.pause_ratio, 0.0);
    }

    #[test]
    fn pause_matches_deficit() {
        let p = PauseAccount::from_rates(BitRate::from_gbps(200.0), BitRate::from_gbps(100.0), 0.0);
        assert!((p.pause_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grace_absorbs_small_deficits() {
        let p = PauseAccount::from_rates(BitRate::from_gbps(100.0), BitRate::from_gbps(99.0), 0.02);
        assert_eq!(p.pause_ratio, 0.0);
        let p = PauseAccount::from_rates(BitRate::from_gbps(100.0), BitRate::from_gbps(90.0), 0.02);
        assert!((p.pause_ratio - 0.08).abs() < 1e-9);
    }

    #[test]
    fn zero_offered_never_pauses() {
        let p = PauseAccount::from_rates(BitRate::ZERO, BitRate::ZERO, 0.02);
        assert_eq!(p.pause_ratio, 0.0);
    }

    #[test]
    fn combine_uses_complement_product() {
        let a = PauseAccount { pause_ratio: 0.5 };
        let b = PauseAccount { pause_ratio: 0.5 };
        let c = PauseAccount::combine(&[a, b]);
        assert!((c.pause_ratio - 0.75).abs() < 1e-9);
        assert_eq!(PauseAccount::combine(&[]).pause_ratio, 0.0);
    }

    #[test]
    fn combine_never_exceeds_one() {
        let a = PauseAccount { pause_ratio: 1.0 };
        let b = PauseAccount { pause_ratio: 0.9 };
        let c = PauseAccount::combine(&[a, b]);
        assert!(c.pause_ratio <= 1.0);
    }

    #[test]
    fn propagated_pause_amplifies_but_stays_a_ratio() {
        let base = PauseAccount { pause_ratio: 0.15 };
        // Amplification 1 is the lossless relay: unchanged.
        assert!((base.propagated(1.0).pause_ratio - 0.15).abs() < 1e-12);
        // Amplification below 1 is clamped to the relay.
        assert!((base.propagated(0.2).pause_ratio - 0.15).abs() < 1e-12);
        // Amplification 2 composes a same-sized surplus via combine.
        let amplified = base.propagated(2.0).pause_ratio;
        assert!((amplified - (1.0 - 0.85 * 0.85)).abs() < 1e-12);
        assert!(amplified > 0.15);
        // Extreme amplification saturates at a full pause, never beyond.
        assert_eq!(
            PauseAccount { pause_ratio: 0.9 }
                .propagated(100.0)
                .pause_ratio,
            1.0
        );
        assert_eq!(PauseAccount::NONE.propagated(100.0).pause_ratio, 0.0);
    }

    #[test]
    fn with_extra_composes() {
        let base = PauseAccount { pause_ratio: 0.1 };
        let combined = base.with_extra(0.2);
        assert!((combined.pause_ratio - 0.28).abs() < 1e-9);
        assert_eq!(PauseAccount::NONE.with_extra(0.0).pause_ratio, 0.0);
    }
}
