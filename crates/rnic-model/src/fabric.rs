//! Multi-host fabric evaluation: PFC pause propagation through the switch.
//!
//! The paper's headline cross-host failure mode is the PFC pause storm: one
//! misbehaving RNIC cannot drain its receive buffer, pauses its switch
//! port, and the lossless switch — which must not drop — relays that pause
//! upstream to the sender ports feeding it. Because PFC pauses a whole
//! port (per priority), every flow sharing a paused sender port stalls,
//! including *victim* flows towards perfectly healthy receivers. The
//! hallmark the operator sees is a victim flow collapsing while the
//! culprit's own traffic still looks acceptable.
//!
//! This module scales the two-server subsystem model out to N hosts on one
//! shared switch. The substitution argument (see `DESIGN.md`): the fleet is
//! homogeneous, so every (sender, culprit) pair behaves exactly like the
//! calibrated two-host [`Subsystem`](crate::subsystem::Subsystem) — the
//! culprit's local pause behaviour is taken from that model unchanged — and
//! the only genuinely new physics is the *switch-level relay*, which is
//! expressed with [`PauseAccount::propagated`]: pause quanta are integral
//! and the shared-buffer thresholds carry hysteresis, so the upstream pause
//! grows with the number of senders sharing the congested egress. Traffic
//! matrices are admissible by construction (incast senders split the
//! egress line rate), so any pause is host-caused, never congestion — the
//! paper's premise, preserved at N ports.

use crate::counters::fabric;
use crate::pfc::PauseAccount;
use crate::spec::RnicSpec;
use crate::subsystem::Measurement;
use collie_host::switch::LosslessSwitch;
use collie_sim::counters::{CounterKind, CounterSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pause ratio above which a port counts as "storming" for the spread
/// gauge. Matches the anomaly monitor's default pause threshold (§5.2).
pub const PAUSE_SPREAD_THRESHOLD: f64 = 0.001;

/// Hard cap on switch-level pause amplification (quanta rounding and
/// buffer hysteresis saturate once the egress is continuously paused).
const MAX_AMPLIFICATION: f64 = 4.0;

/// The shape of a fabric traffic matrix (search Dimension 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// `incast_degree` senders all target the culprit host; one of them
    /// also carries a benign victim flow to a healthy receiver.
    Incast,
    /// A benign all-hosts ring (host *i* → host *i+1*) with the incast
    /// overlay on top; the ring edge out of a paused sender is the victim.
    Ring,
    /// Hosts are paired off; only the culprit's partner sends to it. The
    /// storm has no port to spread to — the control shape.
    Paired,
}

impl TrafficPattern {
    /// All patterns, in ladder order.
    pub const ALL: [TrafficPattern; 3] = [
        TrafficPattern::Incast,
        TrafficPattern::Ring,
        TrafficPattern::Paired,
    ];

    /// Per-extra-sender pause amplification: how quickly the switch-level
    /// relay overshoots the culprit's own deficit as more senders share the
    /// congested egress. The ring pattern's background traffic keeps the
    /// shared buffer fuller, so its thresholds trip sooner.
    fn spread_per_sender(self) -> f64 {
        match self {
            TrafficPattern::Incast => 0.5,
            TrafficPattern::Ring => 0.7,
            TrafficPattern::Paired => 0.0,
        }
    }
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficPattern::Incast => write!(f, "incast"),
            TrafficPattern::Ring => write!(f, "ring"),
            TrafficPattern::Paired => write!(f, "paired"),
        }
    }
}

/// The fabric-level coordinates of one experiment: how many hosts sit on
/// the switch, how many of them gang up on the culprit, and what the rest
/// of the matrix looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FabricShape {
    /// Hosts attached to the switch (port per host; clamped to >= 2).
    pub host_count: u32,
    /// Senders directing the searched workload at the culprit (clamped to
    /// `1..=host_count-1`; the paired pattern uses exactly one).
    pub incast_degree: u32,
    /// Traffic-matrix shape around the culprit flow.
    pub pattern: TrafficPattern,
}

impl FabricShape {
    /// The paper's two-host testbed as a fabric shape.
    pub fn two_host() -> FabricShape {
        FabricShape {
            host_count: 2,
            incast_degree: 1,
            pattern: TrafficPattern::Paired,
        }
    }

    /// The shape with every coordinate clamped to its valid range. The
    /// search mutates coordinates independently, so transiently
    /// inconsistent shapes (incast degree beyond the host count) are
    /// well-defined rather than rejected.
    pub fn normalized(self) -> FabricShape {
        let host_count = self.host_count.max(2);
        let max_incast = match self.pattern {
            TrafficPattern::Paired => 1,
            _ => host_count - 1,
        };
        FabricShape {
            host_count,
            incast_degree: self.incast_degree.clamp(1, max_incast),
            pattern: self.pattern,
        }
    }

    /// Switch ports carrying culprit-bound traffic (the ports the storm
    /// propagates to). The culprit sits on port 0; senders occupy ports
    /// `1..=incast_degree`.
    pub fn sender_ports(self) -> std::ops::RangeInclusive<usize> {
        let s = self.normalized();
        1..=(s.incast_degree as usize)
    }

    /// True if the matrix contains a victim flow: a benign flow leaving a
    /// pause-propagated sender port towards a healthy receiver. Needs a
    /// third host, and the paired pattern isolates its pairs by design.
    ///
    /// The victim *receiver* may itself be an incast sender (at full
    /// incast, host 2 plays both roles): PFC pauses a host's
    /// *transmission*, so a sender's receive direction stays healthy and
    /// can absorb the victim flow — only the victim's *sender* port (1)
    /// being paused throttles it.
    pub fn has_victim(self) -> bool {
        let s = self.normalized();
        s.host_count >= 3 && s.pattern != TrafficPattern::Paired
    }

    /// Switch-level pause amplification for this shape (>= 1, capped).
    pub fn amplification(self) -> f64 {
        let s = self.normalized();
        let extra_senders = (s.incast_degree - 1) as f64;
        (1.0 + s.pattern.spread_per_sender() * extra_senders).min(MAX_AMPLIFICATION)
    }
}

/// How close a measurement comes to the RNIC specification: the worst,
/// over directions that carried traffic, of the best of the bits/s and
/// packets/s fractions. This is the same health notion the anomaly
/// monitor's `spec_fraction` uses (§5.2's "throughput not bottlenecked by
/// the specification").
pub fn spec_fraction(measurement: &Measurement, spec: &RnicSpec) -> f64 {
    if measurement.directions.is_empty() {
        return 0.0;
    }
    let mut worst: f64 = 1.0;
    for dir in &measurement.directions {
        let bps = dir.throughput.fraction_of(spec.line_rate);
        let pps = dir.packet_rate.fraction_of(spec.max_packet_rate);
        worst = worst.min(bps.max(pps));
    }
    worst
}

/// The result of one fabric experiment: the culprit's local two-host
/// measurement plus the cross-host observables derived from the switch
/// relay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricMeasurement {
    /// The shape actually evaluated (normalized).
    pub shape: FabricShape,
    /// Pause-duration ratio per switch port (port 0 = culprit). The
    /// culprit pair's local observables are not duplicated here: its
    /// counters are flattened into [`FabricMeasurement::counters`] and its
    /// health into [`FabricMeasurement::culprit_throughput_frac`] — fabric
    /// measurements are memoized per point, so they stay lean.
    pub port_pause: Vec<f64>,
    /// Achieved / expected throughput of the worst victim flow (1.0 when
    /// the shape has no victim).
    pub victim_throughput_frac: f64,
    /// Pause ratio on the victim flow's sender port (0 without a victim).
    pub victim_pause_ratio: f64,
    /// Spec fraction of the culprit host's own traffic.
    pub culprit_throughput_frac: f64,
    /// Fraction of ports whose pause breaches [`PAUSE_SPREAD_THRESHOLD`].
    pub pause_spread: f64,
    /// Worst per-port pause ratio.
    pub max_port_pause: f64,
    /// The culprit's counter snapshot extended with the `fabric/*` gauges,
    /// so the search layer consumes one uniform counter surface.
    pub counters: CounterSnapshot,
}

/// Evaluate the fabric around an already-measured culprit workload.
///
/// * `culprit` — the two-host measurement of the searched workload, with
///   the culprit host on the receiving side.
/// * `baseline` — the measurement of the benign reference workload (what a
///   victim flow achieves on an idle fabric); measured once per engine.
///
/// Deterministic: a pure function of its arguments, which is what lets the
/// fabric evaluator memoize whole fabric measurements by point.
pub fn evaluate_fabric(
    spec: &RnicSpec,
    shape: FabricShape,
    culprit: &Measurement,
    baseline: &Measurement,
) -> FabricMeasurement {
    let shape = shape.normalized();
    let ports = shape.host_count as usize;
    let window_seconds = culprit.window.as_secs_f64().max(1e-9);

    // The culprit's RNIC pauses its own switch port exactly as the
    // two-host model says it does.
    let culprit_pause = PauseAccount {
        pause_ratio: culprit.max_pause_ratio(),
    };
    // The switch relays that pause to every port feeding the culprit,
    // amplified by quanta rounding and shared-buffer hysteresis.
    let upstream = culprit_pause.propagated(shape.amplification());

    let mut switch = LosslessSwitch::with_ports(spec.line_rate, ports);
    switch.record_pause(0, culprit_pause.pause_ratio * window_seconds);
    for port in shape.sender_ports() {
        switch.record_pause(port, upstream.pause_ratio * window_seconds);
    }
    let port_pause = switch.pause_ratios(window_seconds);

    let culprit_throughput_frac = spec_fraction(culprit, spec);
    let baseline_frac = spec_fraction(baseline, spec);

    // The victim flow leaves sender port 1; PFC pauses the whole port, so
    // the victim moves payload only in the unpaused fraction of the window.
    let (victim_pause_ratio, victim_throughput_frac) = if shape.has_victim() {
        let pause = port_pause.get(1).copied().unwrap_or(0.0);
        (pause, baseline_frac * (1.0 - pause))
    } else {
        (0.0, baseline_frac)
    };

    let storming = port_pause
        .iter()
        .filter(|p| **p > PAUSE_SPREAD_THRESHOLD)
        .count();
    let pause_spread = storming as f64 / ports as f64;
    let max_port_pause = port_pause.iter().copied().fold(0.0, f64::max);

    let counters = CounterSnapshot::from_triples(
        culprit
            .counters
            .iter()
            .map(|(name, kind, value)| (name.to_string(), kind, value))
            .chain([
                (
                    fabric::VICTIM_THROUGHPUT_FRAC.to_string(),
                    CounterKind::Performance,
                    victim_throughput_frac,
                ),
                (
                    fabric::CULPRIT_THROUGHPUT_FRAC.to_string(),
                    CounterKind::Performance,
                    culprit_throughput_frac,
                ),
                (
                    fabric::VICTIM_PAUSE_RATIO.to_string(),
                    CounterKind::Diagnostic,
                    victim_pause_ratio,
                ),
                (
                    fabric::PAUSE_SPREAD.to_string(),
                    CounterKind::Diagnostic,
                    pause_spread,
                ),
                (
                    fabric::MAX_PORT_PAUSE.to_string(),
                    CounterKind::Diagnostic,
                    max_port_pause,
                ),
            ]),
    );

    FabricMeasurement {
        shape,
        port_pause,
        victim_throughput_frac,
        victim_pause_ratio,
        culprit_throughput_frac,
        pause_spread,
        max_port_pause,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::SubsystemId;
    use crate::workload::{Direction, FlowSpec, MessagePattern, Opcode, Transport, WorkloadSpec};
    use collie_host::memory::MemoryTarget;

    fn shape(n: u32, k: u32, pattern: TrafficPattern) -> FabricShape {
        FabricShape {
            host_count: n,
            incast_degree: k,
            pattern,
        }
    }

    fn benign_measurement() -> Measurement {
        let mut sys = SubsystemId::F.build();
        let mut flow = FlowSpec::basic(Direction::AToB);
        flow.num_qps = 8;
        flow.messages = MessagePattern::uniform(64 * 1024);
        sys.evaluate(&WorkloadSpec::single(flow))
    }

    /// A cross-socket receive workload: moderate pause, near-healthy
    /// throughput — the classic storm culprit.
    fn moderately_paused_measurement() -> Measurement {
        let mut sys = SubsystemId::F.build();
        let mut fwd = FlowSpec::basic(Direction::AToB);
        fwd.num_qps = 8;
        fwd.messages = MessagePattern::uniform(64 * 1024);
        fwd.dst_memory = MemoryTarget::HostDram { numa_node: 1 };
        let mut rev = fwd.clone();
        rev.direction = Direction::BToA;
        sys.evaluate(&WorkloadSpec {
            flows: vec![fwd, rev],
        })
    }

    /// A severe local anomaly: receive-WQE thrash, large pause.
    fn storming_measurement() -> Measurement {
        let mut sys = SubsystemId::F.build();
        let mut f = FlowSpec::basic(Direction::AToB);
        f.transport = Transport::Ud;
        f.opcode = Opcode::Send;
        f.wqe_batch = 64;
        f.recv_queue_depth = 256;
        f.send_queue_depth = 256;
        f.mtu = 2048;
        f.messages = MessagePattern::uniform(2048);
        sys.evaluate(&WorkloadSpec::single(f))
    }

    #[test]
    fn shapes_normalize_and_amplify_sensibly() {
        let s = shape(0, 99, TrafficPattern::Incast).normalized();
        assert_eq!(s.host_count, 2);
        assert_eq!(s.incast_degree, 1);
        assert_eq!(s.amplification(), 1.0);

        let s = shape(8, 5, TrafficPattern::Incast);
        assert_eq!(s.normalized(), s);
        assert!(s.amplification() > 1.0);
        assert!(s.amplification() <= MAX_AMPLIFICATION);
        // Paired never spreads and never gangs up.
        let p = shape(8, 5, TrafficPattern::Paired).normalized();
        assert_eq!(p.incast_degree, 1);
        assert_eq!(p.amplification(), 1.0);
        assert!(!p.has_victim());
        // Victims need a third host.
        assert!(!shape(2, 1, TrafficPattern::Incast).has_victim());
        assert!(shape(3, 2, TrafficPattern::Ring).has_victim());
    }

    #[test]
    fn benign_culprit_leaves_the_fabric_quiet() {
        let spec = SubsystemId::F.rnic_model().spec();
        let benign = benign_measurement();
        let fm = evaluate_fabric(&spec, shape(6, 4, TrafficPattern::Incast), &benign, &benign);
        assert!(fm.max_port_pause < PAUSE_SPREAD_THRESHOLD);
        assert_eq!(fm.pause_spread, 0.0);
        assert_eq!(fm.victim_pause_ratio, 0.0);
        assert!(fm.victim_throughput_frac > 0.9);
        assert!(fm.culprit_throughput_frac > 0.9);
    }

    #[test]
    fn pause_propagates_to_sender_ports_and_collapses_the_victim() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = storming_measurement();
        let baseline = benign_measurement();
        let fm = evaluate_fabric(
            &spec,
            shape(6, 4, TrafficPattern::Incast),
            &culprit,
            &baseline,
        );
        // Port 0 carries the culprit's own pause; ports 1..=4 the relay.
        assert!(fm.port_pause[0] > 0.1);
        for port in 1..=4 {
            assert!(
                fm.port_pause[port] >= fm.port_pause[0] * 0.99,
                "relayed pause on port {port} should not shrink: {:?}",
                fm.port_pause
            );
        }
        // Port 5 hosts the victim receiver: healthy, unpaused.
        assert_eq!(fm.port_pause[5], 0.0);
        assert!(fm.victim_pause_ratio > 0.1);
        assert!(fm.victim_throughput_frac < 0.8);
        assert!(fm.pause_spread >= 5.0 / 6.0 - 1e-9);
    }

    #[test]
    fn amplification_grows_with_incast_degree() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = moderately_paused_measurement();
        let baseline = benign_measurement();
        let narrow = evaluate_fabric(
            &spec,
            shape(8, 1, TrafficPattern::Incast),
            &culprit,
            &baseline,
        );
        let wide = evaluate_fabric(
            &spec,
            shape(8, 6, TrafficPattern::Incast),
            &culprit,
            &baseline,
        );
        assert!(
            wide.victim_pause_ratio > narrow.victim_pause_ratio,
            "wider incast must propagate more pause: {} vs {}",
            wide.victim_pause_ratio,
            narrow.victim_pause_ratio
        );
        assert!(wide.victim_throughput_frac < narrow.victim_throughput_frac);
    }

    #[test]
    fn cross_host_hallmark_victim_collapses_while_culprit_stays_healthy() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = moderately_paused_measurement();
        let baseline = benign_measurement();
        let fm = evaluate_fabric(
            &spec,
            shape(8, 6, TrafficPattern::Ring),
            &culprit,
            &baseline,
        );
        assert!(
            fm.culprit_throughput_frac >= 0.8,
            "culprit should look healthy: {}",
            fm.culprit_throughput_frac
        );
        assert!(
            fm.victim_throughput_frac < 0.8,
            "victim should collapse: {}",
            fm.victim_throughput_frac
        );
        assert!(fm.victim_pause_ratio > PAUSE_SPREAD_THRESHOLD);
    }

    #[test]
    fn paired_pattern_contains_the_storm() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = storming_measurement();
        let baseline = benign_measurement();
        let fm = evaluate_fabric(
            &spec,
            shape(6, 4, TrafficPattern::Paired),
            &culprit,
            &baseline,
        );
        // Only the culprit's partner port is paused, and no victim exists.
        assert!(fm.port_pause[1] > 0.0);
        assert!(fm.port_pause[2..].iter().all(|p| *p == 0.0));
        assert_eq!(fm.victim_pause_ratio, 0.0);
        assert!(fm.victim_throughput_frac > 0.9);
    }

    #[test]
    fn gauges_are_published_through_the_counter_snapshot() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = storming_measurement();
        let baseline = benign_measurement();
        let fm = evaluate_fabric(
            &spec,
            shape(4, 3, TrafficPattern::Incast),
            &culprit,
            &baseline,
        );
        for name in fabric::ALL {
            assert!(fm.counters.value(name).is_some(), "{name} missing");
        }
        assert_eq!(
            fm.counters.value(fabric::VICTIM_PAUSE_RATIO),
            Some(fm.victim_pause_ratio)
        );
        assert_eq!(
            fm.counters.kind(fabric::VICTIM_PAUSE_RATIO),
            Some(CounterKind::Diagnostic)
        );
        assert_eq!(
            fm.counters.kind(fabric::VICTIM_THROUGHPUT_FRAC),
            Some(CounterKind::Performance)
        );
        // The culprit's 13 RNIC counters survive alongside the 5 gauges.
        assert_eq!(fm.counters.len(), 13 + fabric::ALL.len());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let spec = SubsystemId::F.rnic_model().spec();
        let culprit = storming_measurement();
        let baseline = benign_measurement();
        let s = shape(5, 3, TrafficPattern::Ring);
        let a = evaluate_fabric(&spec, s, &culprit, &baseline);
        let b = evaluate_fabric(&spec, s, &culprit, &baseline);
        assert_eq!(a, b);
    }
}
