//! A deterministic discrete-event queue.
//!
//! The RNIC and host models are mostly fluid (rate-based), but a few pieces
//! — doorbell batching, cache warm-up, and the per-tick subsystem stepper —
//! want an explicit "what happens next, and when" structure. [`EventQueue`]
//! is a minimal priority queue over [`SimTime`] with a tie-breaking sequence
//! number so that two events scheduled for the same instant always pop in
//! insertion order, keeping runs bit-for-bit reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the calling model; we clamp
    /// to `now` rather than panic so a slightly stale producer cannot wedge a
    /// long search campaign, and debug builds assert to surface the bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling at {at} before now {}", self.now);
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pop the next event only if it is scheduled at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drop all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), "c");
        q.schedule(SimTime::from_millis(1), "a");
        q.schedule(SimTime::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(10);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(2), ());
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(2));
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(10), 2);
        assert_eq!(
            q.pop_until(SimTime::from_millis(5)),
            Some((SimTime::from_millis(1), 1))
        );
        assert_eq!(q.pop_until(SimTime::from_millis(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "first");
        q.pop();
        // Clock is now at 10ms; an event "scheduled" earlier should still be
        // delivered (at now), not lost or delivered out of order.
        #[allow(unused_mut)]
        let mut delivered = false;
        if cfg!(debug_assertions) {
            // In debug builds this is an assertion failure; only exercise the
            // clamping behaviour in release-style logic via catch_unwind-free
            // path when assertions are disabled.
        } else {
            q.schedule(SimTime::from_millis(1), "late");
            let (t, e) = q.pop().unwrap();
            assert_eq!(e, "late");
            assert_eq!(t, SimTime::from_millis(10));
            delivered = true;
        }
        let _ = delivered;
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1) + SimDuration::ZERO, ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
