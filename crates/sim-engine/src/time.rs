//! Simulated time.
//!
//! All models in this workspace advance a shared notion of simulated time
//! measured in integer nanoseconds. Integer nanoseconds keep the event queue
//! total-ordering exact (no floating point ties) while still being fine
//! grained enough to express per-packet and per-DMA-transaction latencies on
//! a 200 Gbps device (a 4 KB MTU packet at 200 Gbps lasts ~164 ns).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting and rate math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The ratio of this duration to `total`, in `[0, 1]` if `self <= total`.
    /// Returns 0 when `total` is zero.
    pub fn ratio_of(self, total: SimDuration) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 15_000_000);
        let d = t - SimTime::from_millis(10);
        assert_eq!(d, SimDuration::from_millis(5));
        assert_eq!(d * 3, SimDuration::from_millis(15));
        assert_eq!(d / 5, SimDuration::from_millis(1));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
    }

    #[test]
    fn ratio_of_handles_zero_total() {
        assert_eq!(SimDuration::from_millis(1).ratio_of(SimDuration::ZERO), 0.0);
        let half = SimDuration::from_millis(5).ratio_of(SimDuration::from_millis(10));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
