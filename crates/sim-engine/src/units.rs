//! Data-size and rate units.
//!
//! RNIC specifications in the paper are quoted in Gbps (bits per second) and
//! Mpps (packets per second); memory regions and messages are quoted in
//! bytes, KB, and MB. These newtypes keep the two families of units from
//! being mixed up and centralise the conversions (notably bytes-over-a-
//! duration to bit rate, which the anomaly monitor uses to compare measured
//! throughput against the specification).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A byte count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from kibibytes (1024 bytes).
    pub const fn from_kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Construct from mebibytes.
    pub const fn from_mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Construct from gibibytes.
    pub const fn from_gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` (for rate math).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Bit count.
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// Number of segments of `mtu` bytes needed to carry this payload
    /// (at least 1 even for a zero-byte message, matching how an RNIC still
    /// emits one packet for a 0-length SEND).
    pub fn segments(self, mtu: ByteSize) -> u64 {
        if mtu.0 == 0 {
            return 1;
        }
        self.0.div_ceil(mtu.0).max(1)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// Multiply by a scalar count (e.g. bytes per message × messages).
    pub const fn scaled(self, n: u64) -> ByteSize {
        ByteSize(self.0 * n)
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The bit rate achieved by transferring this many bytes over `d`.
    /// Returns zero rate for a zero duration.
    pub fn over(self, d: SimDuration) -> BitRate {
        if d.is_zero() {
            return BitRate::ZERO;
        }
        BitRate::from_bits_per_sec(self.as_bits() as f64 / d.as_secs_f64())
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct BitRate(f64);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0.0);

    /// Construct from bits per second.
    pub fn from_bits_per_sec(bps: f64) -> Self {
        BitRate(bps.max(0.0))
    }

    /// Construct from gigabits per second (the unit the paper quotes RNIC
    /// line rates in: 25, 100, 200 Gbps).
    pub fn from_gbps(g: f64) -> Self {
        BitRate((g * 1e9).max(0.0))
    }

    /// Bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.0
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Gigabits per second.
    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// The bytes transferred at this rate over `d`.
    pub fn bytes_over(self, d: SimDuration) -> ByteSize {
        ByteSize::from_bytes((self.bytes_per_sec() * d.as_secs_f64()) as u64)
    }

    /// Time needed to transfer `bytes` at this rate. Returns zero for a zero
    /// payload and `None` for a zero rate and non-zero payload.
    pub fn time_to_send(self, bytes: ByteSize) -> Option<SimDuration> {
        if bytes.as_bytes() == 0 {
            return Some(SimDuration::ZERO);
        }
        if self.0 <= 0.0 {
            return None;
        }
        Some(SimDuration::from_secs_f64(bytes.as_bits() as f64 / self.0))
    }

    /// Scale the rate by a unitless factor, clamping at zero.
    pub fn scaled(self, factor: f64) -> BitRate {
        BitRate((self.0 * factor).max(0.0))
    }

    /// The smaller of two rates.
    pub fn min(self, other: BitRate) -> BitRate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two rates.
    pub fn max(self, other: BitRate) -> BitRate {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The fraction `self / spec`, clamped to `[0, inf)`; 0 when spec is 0.
    pub fn fraction_of(self, spec: BitRate) -> f64 {
        if spec.0 <= 0.0 {
            0.0
        } else {
            self.0 / spec.0
        }
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}Gbps", self.gbps())
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

/// A packet (or message/request) rate in packets per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct PacketRate(f64);

impl PacketRate {
    /// Zero rate.
    pub const ZERO: PacketRate = PacketRate(0.0);

    /// Construct from packets per second.
    pub fn from_pps(pps: f64) -> Self {
        PacketRate(pps.max(0.0))
    }

    /// Construct from millions of packets per second (the unit RNIC message
    /// rate specifications use).
    pub fn from_mpps(m: f64) -> Self {
        PacketRate((m * 1e6).max(0.0))
    }

    /// Packets per second.
    pub fn pps(self) -> f64 {
        self.0
    }

    /// Millions of packets per second.
    pub fn mpps(self) -> f64 {
        self.0 / 1e6
    }

    /// Scale by a unitless factor, clamping at zero.
    pub fn scaled(self, factor: f64) -> PacketRate {
        PacketRate((self.0 * factor).max(0.0))
    }

    /// The smaller of two rates.
    pub fn min(self, other: PacketRate) -> PacketRate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The fraction `self / spec`, 0 when spec is 0.
    pub fn fraction_of(self, spec: PacketRate) -> f64 {
        if spec.0 <= 0.0 {
            0.0
        } else {
            self.0 / spec.0
        }
    }
}

impl fmt::Display for PacketRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}Mpps", self.mpps())
        } else {
            write!(f, "{:.0}pps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_conversions() {
        assert_eq!(ByteSize::from_kib(4).as_bytes(), 4096);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::from_bytes(10).as_bits(), 80);
    }

    #[test]
    fn segmentation_matches_mtu_math() {
        let mtu = ByteSize::from_bytes(1024);
        assert_eq!(ByteSize::from_bytes(1).segments(mtu), 1);
        assert_eq!(ByteSize::from_bytes(1024).segments(mtu), 1);
        assert_eq!(ByteSize::from_bytes(1025).segments(mtu), 2);
        assert_eq!(ByteSize::from_kib(64).segments(mtu), 64);
        // Zero-length messages still occupy a packet.
        assert_eq!(ByteSize::ZERO.segments(mtu), 1);
        // Degenerate zero MTU does not panic.
        assert_eq!(ByteSize::from_bytes(100).segments(ByteSize::ZERO), 1);
    }

    #[test]
    fn bitrate_conversions() {
        let r = BitRate::from_gbps(100.0);
        assert!((r.bytes_per_sec() - 12.5e9).abs() < 1.0);
        assert!((r.gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_to_send_and_back() {
        let r = BitRate::from_gbps(8.0); // 1 GB/s
        let d = r.time_to_send(ByteSize::from_bytes(1_000_000_000)).unwrap();
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(r.time_to_send(ByteSize::ZERO).unwrap(), SimDuration::ZERO);
        assert!(BitRate::ZERO
            .time_to_send(ByteSize::from_bytes(1))
            .is_none());
    }

    #[test]
    fn rate_over_duration() {
        let rate = ByteSize::from_bytes(125_000_000).over(SimDuration::from_secs(1));
        assert!((rate.gbps() - 1.0).abs() < 1e-9);
        assert_eq!(
            ByteSize::from_bytes(1).over(SimDuration::ZERO),
            BitRate::ZERO
        );
    }

    #[test]
    fn fraction_of_spec() {
        let spec = BitRate::from_gbps(200.0);
        let measured = BitRate::from_gbps(150.0);
        assert!((measured.fraction_of(spec) - 0.75).abs() < 1e-12);
        assert_eq!(measured.fraction_of(BitRate::ZERO), 0.0);
    }

    #[test]
    fn packet_rate_units() {
        let r = PacketRate::from_mpps(200.0);
        assert!((r.pps() - 200e6).abs() < 1.0);
        assert!((r.scaled(0.5).mpps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(BitRate::from_gbps(-5.0), BitRate::ZERO);
        assert_eq!(PacketRate::from_pps(-1.0), PacketRate::ZERO);
        assert_eq!(BitRate::from_gbps(1.0).scaled(-2.0), BitRate::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ByteSize::from_kib(64)), "64.00KiB");
        assert_eq!(format!("{}", BitRate::from_gbps(25.0)), "25.00Gbps");
        assert_eq!(format!("{}", PacketRate::from_mpps(1.5)), "1.50Mpps");
    }
}
