//! Fluid queue and rate-limiter primitives.
//!
//! The RNIC buffer model (Figure 1, circles 5/6) and the PFC model both work
//! on a fluid approximation: within one simulation tick the relevant queue
//! fills at the arrival rate and drains at the service rate, and what matters
//! is the resulting occupancy versus the XOFF/XON thresholds. [`FluidQueue`]
//! captures exactly that, and [`TokenBucket`] provides the rate shaping used
//! for line-rate and pps budgets.

use crate::time::SimDuration;
use crate::units::{BitRate, ByteSize};
use serde::{Deserialize, Serialize};

/// A byte-denominated fluid queue with a finite capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FluidQueue {
    capacity: f64,
    occupancy: f64,
    /// Bytes that could not be admitted because the queue was full.
    overflow: f64,
}

/// The outcome of advancing a [`FluidQueue`] by one tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueTick {
    /// Bytes actually admitted this tick.
    pub admitted: f64,
    /// Bytes actually drained this tick.
    pub drained: f64,
    /// Bytes rejected because the queue was full.
    pub overflowed: f64,
    /// Occupancy at the end of the tick, in bytes.
    pub occupancy: f64,
    /// Occupancy as a fraction of capacity (0 for an unbounded queue).
    pub fill_fraction: f64,
}

impl FluidQueue {
    /// A queue holding at most `capacity` bytes.
    pub fn new(capacity: ByteSize) -> Self {
        FluidQueue {
            capacity: capacity.as_f64(),
            occupancy: 0.0,
            overflow: 0.0,
        }
    }

    /// Current occupancy in bytes.
    pub fn occupancy_bytes(&self) -> f64 {
        self.occupancy
    }

    /// Occupancy as a fraction of capacity.
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            (self.occupancy / self.capacity).clamp(0.0, 1.0)
        }
    }

    /// Total bytes rejected since construction or the last [`reset`].
    ///
    /// [`reset`]: FluidQueue::reset
    pub fn overflow_bytes(&self) -> f64 {
        self.overflow
    }

    /// Empty the queue and clear the overflow accumulator.
    pub fn reset(&mut self) {
        self.occupancy = 0.0;
        self.overflow = 0.0;
    }

    /// Advance the queue by `dt` with the given arrival and service rates.
    ///
    /// Drain is applied to the occupancy plus the arrivals of this tick
    /// (fluid approximation: traffic can cut through within a tick), then
    /// whatever does not fit in the capacity is counted as overflow. A
    /// lossless (PFC-protected) consumer never actually drops these bytes —
    /// the caller uses the overflow as the pressure that turns into pause
    /// frames — but tracking it keeps the math simple and conservative.
    pub fn tick(&mut self, arrival: BitRate, service: BitRate, dt: SimDuration) -> QueueTick {
        let arriving = arrival.bytes_per_sec() * dt.as_secs_f64();
        let draining = service.bytes_per_sec() * dt.as_secs_f64();

        let available = self.occupancy + arriving;
        let drained = draining.min(available);
        let mut after = available - drained;

        let overflowed = if self.capacity > 0.0 && after > self.capacity {
            let o = after - self.capacity;
            after = self.capacity;
            o
        } else {
            0.0
        };

        self.occupancy = after;
        self.overflow += overflowed;
        let admitted = (arriving - overflowed).max(0.0);

        QueueTick {
            admitted,
            drained,
            overflowed,
            occupancy: self.occupancy,
            fill_fraction: self.fill_fraction(),
        }
    }
}

/// A token bucket expressing a rate budget (line rate, pps budget, PCIe
/// bandwidth share).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` tokens per second and holding at
    /// most `burst` tokens. The bucket starts full.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        let burst = burst.max(0.0);
        TokenBucket {
            rate_per_sec: rate_per_sec.max(0.0),
            burst,
            tokens: burst,
        }
    }

    /// Refill for an elapsed duration.
    pub fn refill(&mut self, dt: SimDuration) {
        self.tokens = (self.tokens + self.rate_per_sec * dt.as_secs_f64()).min(self.burst);
    }

    /// Try to consume `amount` tokens; returns how many were actually
    /// granted (all of it, or whatever is left).
    pub fn consume_upto(&mut self, amount: f64) -> f64 {
        let granted = amount.max(0.0).min(self.tokens);
        self.tokens -= granted;
        granted
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// The configured refill rate.
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(cap_kib: u64) -> FluidQueue {
        FluidQueue::new(ByteSize::from_kib(cap_kib))
    }

    #[test]
    fn queue_stays_empty_when_service_exceeds_arrival() {
        let mut queue = q(64);
        let t = queue.tick(
            BitRate::from_gbps(50.0),
            BitRate::from_gbps(100.0),
            SimDuration::from_millis(1),
        );
        assert_eq!(t.occupancy, 0.0);
        assert_eq!(t.overflowed, 0.0);
        assert!(t.drained > 0.0);
    }

    #[test]
    fn queue_accumulates_under_deficit() {
        let mut queue = FluidQueue::new(ByteSize::from_mib(64));
        let t = queue.tick(
            BitRate::from_gbps(100.0),
            BitRate::from_gbps(60.0),
            SimDuration::from_millis(1),
        );
        // 40 Gbps deficit over 1 ms = 5 MB accumulated.
        assert!(
            (t.occupancy - 5.0e6).abs() < 5e4,
            "occupancy {}",
            t.occupancy
        );
        assert_eq!(t.overflowed, 0.0);
    }

    #[test]
    fn queue_overflows_at_capacity() {
        let mut queue = q(64); // 64 KiB
        let t = queue.tick(
            BitRate::from_gbps(100.0),
            BitRate::ZERO,
            SimDuration::from_millis(1),
        );
        assert!((t.occupancy - 65536.0).abs() < 1e-6);
        assert!(t.overflowed > 0.0);
        assert!((queue.fill_fraction() - 1.0).abs() < 1e-9);
        assert_eq!(queue.overflow_bytes(), t.overflowed);
    }

    #[test]
    fn reset_clears_state() {
        let mut queue = q(1);
        queue.tick(
            BitRate::from_gbps(10.0),
            BitRate::ZERO,
            SimDuration::from_millis(1),
        );
        queue.reset();
        assert_eq!(queue.occupancy_bytes(), 0.0);
        assert_eq!(queue.overflow_bytes(), 0.0);
    }

    #[test]
    fn occupancy_drains_over_time() {
        let mut queue = FluidQueue::new(ByteSize::from_mib(8));
        queue.tick(
            BitRate::from_gbps(100.0),
            BitRate::ZERO,
            SimDuration::from_millis(1),
        );
        let filled = queue.occupancy_bytes();
        assert!(filled > 0.0);
        queue.tick(
            BitRate::ZERO,
            BitRate::from_gbps(200.0),
            SimDuration::from_millis(1),
        );
        assert!(queue.occupancy_bytes() < filled);
    }

    #[test]
    fn token_bucket_grants_up_to_available() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert_eq!(tb.consume_upto(40.0), 40.0);
        assert_eq!(tb.consume_upto(100.0), 60.0);
        assert_eq!(tb.consume_upto(10.0), 0.0);
        tb.refill(SimDuration::from_millis(50)); // +50 tokens
        assert!((tb.available() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn token_bucket_never_exceeds_burst() {
        let mut tb = TokenBucket::new(1e6, 10.0);
        tb.refill(SimDuration::from_secs(10));
        assert_eq!(tb.available(), 10.0);
    }

    #[test]
    fn token_bucket_clamps_negative_inputs() {
        let mut tb = TokenBucket::new(-5.0, -1.0);
        assert_eq!(tb.available(), 0.0);
        assert_eq!(tb.consume_upto(-3.0), 0.0);
        tb.refill(SimDuration::from_secs(1));
        assert_eq!(tb.available(), 0.0);
    }
}
