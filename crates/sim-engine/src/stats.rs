//! Online statistics and summaries.
//!
//! The anomaly monitor samples throughput and pause duration several times
//! per experiment and needs to decide whether traffic is "stable" before
//! comparing against thresholds (§6 of the paper: metrics are collected four
//! times per iteration and averaged). The benchmark harness additionally
//! reports mean ± standard deviation over repeated seeded runs (the error
//! bars of Figures 4 and 5). Both needs are served here.

use serde::{Deserialize, Serialize};

/// Welford-style online mean / variance accumulator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0. The
    /// anomaly monitor uses this as its traffic-stability test and the
    /// search driver uses it to rank diagnostic counters (the paper ranks
    /// the 9 vendor counters by std/mean over 10 random probes).
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshot into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// An immutable statistical summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarise a slice of observations.
    pub fn of(values: &[f64]) -> Summary {
        let mut s = OnlineStats::new();
        for &v in values {
            s.push(v);
        }
        s.summary()
    }
}

/// The `q`-th percentile (0..=100) of a sample using nearest-rank on a sorted
/// copy. Returns 0 for an empty sample.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn coefficient_of_variation() {
        let mut s = OnlineStats::new();
        for x in [10.0, 10.0, 10.0] {
            s.push(x);
        }
        assert_eq!(s.coefficient_of_variation(), 0.0);
        let mut s2 = OnlineStats::new();
        for x in [5.0, 15.0] {
            s2.push(x);
        }
        assert!((s2.coefficient_of_variation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&v, 50.0), 6.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Out-of-range quantiles clamp instead of panicking.
        assert_eq!(percentile(&v, 150.0), 10.0);
        assert_eq!(percentile(&v, -5.0), 1.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }
}
