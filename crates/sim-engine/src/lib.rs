//! # collie-sim
//!
//! Deterministic simulation substrate for the Collie reproduction.
//!
//! The Collie paper drives real hardware; this workspace drives a behavioural
//! model of that hardware instead. Everything in this crate is the
//! domain-agnostic machinery that the host, RNIC, and verbs models sit on
//! top of:
//!
//! * [`time`] — nanosecond-resolution simulated time and durations.
//! * [`units`] — byte counts, bit rates, packet rates, and conversions
//!   between them (the RNIC specifications in the paper are expressed in
//!   Gbps and Mpps).
//! * [`event`] — a deterministic discrete-event queue.
//! * [`rng`] — a seedable, forkable PRNG with no external dependencies so
//!   that every simulation and every search campaign is exactly
//!   reproducible from a single `u64` seed.
//! * [`counters`] — the counter registry. Collie's whole search signal is
//!   "performance counters" and "diagnostic counters"; this module gives
//!   every hardware model a uniform way to expose them and the search a
//!   uniform way to snapshot them.
//! * [`queue`] — fluid (rate-based) queue and token-bucket primitives used
//!   by the buffer/backpressure models.
//! * [`stats`] — online statistics and percentile summaries used by the
//!   anomaly monitor and the benchmark harness.
//! * [`series`] — time series recording, used to regenerate Figure 6
//!   (diagnostic counter value during the search).
//!
//! The crate is deliberately free of any RDMA-specific concepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use counters::{CounterHandle, CounterKind, CounterRegistry, CounterSnapshot};
pub use event::EventQueue;
pub use queue::{FluidQueue, TokenBucket};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
pub use units::{BitRate, ByteSize, PacketRate};
