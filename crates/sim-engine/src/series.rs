//! Time-series recording.
//!
//! Figure 6 of the paper plots the value of one diagnostic counter (Receive
//! WQE Cache Miss) across the wall-clock time of the search, annotated with
//! the instants at which anomalies were found. [`TimeSeries`] is the small
//! recording structure the search driver uses to produce exactly that trace,
//! plus the normalisation the figure applies (values divided by the maximum
//! observed during the search).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub at: SimTime,
    /// The recorded value.
    pub value: f64,
    /// Whether an anomaly was discovered at this sample (drawn as a marker
    /// in Figure 6).
    pub anomaly: bool,
}

/// An append-only series of `(time, value, anomaly?)` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series with a display name (e.g. the counter being traced).
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample.
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.samples.push(Sample {
            at,
            value,
            anomaly: false,
        });
    }

    /// Append a sample marking an anomaly discovery.
    pub fn record_anomaly(&mut self, at: SimTime, value: f64) {
        self.samples.push(Sample {
            at,
            value,
            anomaly: true,
        });
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The maximum recorded value (0 if empty).
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|s| s.value).fold(0.0_f64, f64::max)
    }

    /// A copy of the series with values divided by the maximum observed
    /// value, matching Figure 6's normalisation. If the maximum is zero the
    /// values are left untouched.
    pub fn normalized(&self) -> TimeSeries {
        let max = self.max_value();
        if max <= 0.0 {
            return self.clone();
        }
        TimeSeries {
            name: self.name.clone(),
            samples: self
                .samples
                .iter()
                .map(|s| Sample {
                    at: s.at,
                    value: s.value / max,
                    anomaly: s.anomaly,
                })
                .collect(),
        }
    }

    /// Samples at which anomalies were found.
    pub fn anomaly_samples(&self) -> Vec<Sample> {
        self.samples.iter().copied().filter(|s| s.anomaly).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut ts = TimeSeries::new("wqe_cache_miss");
        ts.record(SimTime::from_secs(1), 5.0);
        ts.record_anomaly(SimTime::from_secs(2), 10.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.name(), "wqe_cache_miss");
        assert!(!ts.samples()[0].anomaly);
        assert!(ts.samples()[1].anomaly);
    }

    #[test]
    fn normalisation_divides_by_max() {
        let mut ts = TimeSeries::new("c");
        ts.record(SimTime::from_secs(1), 2.0);
        ts.record(SimTime::from_secs(2), 8.0);
        let n = ts.normalized();
        assert!((n.samples()[0].value - 0.25).abs() < 1e-12);
        assert!((n.samples()[1].value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalisation_of_all_zero_series_is_identity() {
        let mut ts = TimeSeries::new("c");
        ts.record(SimTime::from_secs(1), 0.0);
        let n = ts.normalized();
        assert_eq!(n.samples()[0].value, 0.0);
    }

    #[test]
    fn anomaly_samples_filtered() {
        let mut ts = TimeSeries::new("c");
        ts.record(SimTime::from_secs(1), 1.0);
        ts.record_anomaly(SimTime::from_secs(2), 2.0);
        ts.record(SimTime::from_secs(3), 3.0);
        ts.record_anomaly(SimTime::from_secs(4), 4.0);
        let anomalies = ts.anomaly_samples();
        assert_eq!(anomalies.len(), 2);
        assert_eq!(anomalies[0].value, 2.0);
        assert_eq!(anomalies[1].value, 4.0);
    }

    #[test]
    fn empty_series_defaults() {
        let ts = TimeSeries::new("c");
        assert!(ts.is_empty());
        assert_eq!(ts.max_value(), 0.0);
        assert!(ts.anomaly_samples().is_empty());
    }
}
