//! Hardware counter registry.
//!
//! Collie's central idea is that commodity RDMA subsystems expose two kinds
//! of counters and that both can serve as opaque search signals:
//!
//! * **performance counters** — throughput-style values every RNIC exports
//!   (bytes sent per second, packets per second, pause-frame duration);
//!   the search *minimises* these, and
//! * **diagnostic counters** — vendor debugging counters that map to
//!   internal "unexpected events" (PCIe back-pressure, internal cache miss);
//!   the search *maximises* these.
//!
//! Every hardware model in this workspace registers its counters here so the
//! search layer can snapshot them uniformly without knowing what they mean —
//! exactly how the paper treats the vendor counters.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Whether a counter is a performance counter (minimised by the search) or a
/// diagnostic counter (maximised by the search).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterKind {
    /// Throughput-style counters exported by every commodity RNIC.
    Performance,
    /// Vendor debugging counters mapped to internal unexpected events.
    Diagnostic,
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterKind::Performance => write!(f, "perf"),
            CounterKind::Diagnostic => write!(f, "diag"),
        }
    }
}

#[derive(Debug)]
struct CounterCell {
    name: Arc<str>,
    kind: CounterKind,
    value: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    cells: Vec<CounterCell>,
    by_name: BTreeMap<String, usize>,
    /// Cell indices in sorted-name order, maintained on registration, so a
    /// snapshot is one pre-sized pass instead of a per-call sort.
    sorted: Vec<usize>,
}

/// A registry of named counters shared by all components of one simulated
/// subsystem.
///
/// Cloning the registry clones the *handle*; all clones observe the same
/// underlying counters (mirroring how the vendor monitor daemon and the
/// workload generator both read the same hardware registers).
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

/// A cheap handle to one registered counter.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    registry: CounterRegistry,
    index: usize,
}

/// An immutable snapshot of every counter at one instant.
///
/// Stored as a name-sorted vector whose names are shared (`Arc<str>`) with
/// the registry cells: taking or cloning a snapshot costs one vector
/// allocation and a refcount bump per counter, not a string allocation per
/// counter — snapshots ride along on every `Measurement`, so this is on the
/// evaluator's hot path. The serialised form is unchanged: it round-trips
/// through the same sorted name → `(kind, value)` map the previous
/// `BTreeMap` representation produced, byte for byte.
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    values: Vec<(Arc<str>, CounterKind, f64)>,
}

impl PartialEq for CounterSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.0 == b.0 && a.1 == b.1 && a.2 == b.2)
    }
}

/// The serialised shape of [`CounterSnapshot`] — identical to its previous
/// in-memory representation, so existing golden fixtures parse and replay
/// byte-for-byte.
#[derive(Serialize, Deserialize)]
struct CounterSnapshotWire {
    values: BTreeMap<String, (CounterKind, f64)>,
}

impl Serialize for CounterSnapshot {
    fn to_value(&self) -> serde::Value {
        CounterSnapshotWire {
            values: self
                .values
                .iter()
                .map(|(n, k, v)| (n.to_string(), (*k, *v)))
                .collect(),
        }
        .to_value()
    }
}

impl Deserialize for CounterSnapshot {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let wire = CounterSnapshotWire::from_value(value)?;
        Ok(CounterSnapshot {
            values: wire
                .values
                .into_iter()
                .map(|(n, (k, v))| (Arc::from(n.as_str()), k, v))
                .collect(),
        })
    }
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter, returning a handle. Registering a name twice
    /// returns a handle to the existing counter (components may be rebuilt
    /// between experiments while the registry persists).
    pub fn register(&self, name: &str, kind: CounterKind) -> CounterHandle {
        let mut inner = self.inner.write();
        if let Some(&index) = inner.by_name.get(name) {
            return CounterHandle {
                registry: self.clone(),
                index,
            };
        }
        let index = inner.cells.len();
        inner.cells.push(CounterCell {
            name: Arc::from(name),
            kind,
            value: 0.0,
        });
        inner.by_name.insert(name.to_string(), index);
        inner.sorted = inner.by_name.values().copied().collect();
        CounterHandle {
            registry: self.clone(),
            index,
        }
    }

    /// Look up an already-registered counter by name.
    pub fn get(&self, name: &str) -> Option<CounterHandle> {
        let inner = self.inner.read();
        inner.by_name.get(name).map(|&index| CounterHandle {
            registry: self.clone(),
            index,
        })
    }

    /// Names of all registered counters of a given kind, in registration-
    /// independent (sorted) order.
    pub fn names(&self, kind: CounterKind) -> Vec<String> {
        let inner = self.inner.read();
        let mut names: Vec<String> = inner
            .cells
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.name.to_string())
            .collect();
        names.sort();
        names
    }

    /// Reset every counter to zero (done between experiments, like clearing
    /// hardware counters before a run).
    pub fn reset(&self) {
        let mut inner = self.inner.write();
        for cell in &mut inner.cells {
            cell.value = 0.0;
        }
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> CounterSnapshot {
        let inner = self.inner.read();
        let mut values = Vec::with_capacity(inner.sorted.len());
        for &index in &inner.sorted {
            let cell = &inner.cells[index];
            values.push((cell.name.clone(), cell.kind, cell.value));
        }
        CounterSnapshot { values }
    }

    /// Total number of registered counters.
    pub fn len(&self) -> usize {
        self.inner.read().cells.len()
    }

    /// True if no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A write guard over the whole registry: applies several counter updates
/// under one lock acquisition. The per-experiment reset-and-publish sequence
/// of a subsystem touches every registered counter; taking and releasing
/// the registry lock once per update dominated that hot loop, so the
/// evaluator batches the sequence through one of these instead. Updates
/// through the guard are value-for-value identical to the equivalent
/// [`CounterHandle`] calls.
pub struct CounterWriter<'a> {
    registry: &'a CounterRegistry,
    inner: parking_lot::RwLockWriteGuard<'a, RegistryInner>,
}

impl CounterWriter<'_> {
    fn cell(&mut self, handle: &CounterHandle) -> &mut CounterCell {
        debug_assert!(
            Arc::ptr_eq(&self.registry.inner, &handle.registry.inner),
            "counter handle used with a writer of a different registry"
        );
        &mut self.inner.cells[handle.index]
    }

    /// Batched [`CounterHandle::set`]: overwrite, clamped at zero.
    pub fn set(&mut self, handle: &CounterHandle, value: f64) {
        self.cell(handle).value = value.max(0.0);
    }

    /// Batched [`CounterHandle::add`]: accumulate, clamped at zero.
    pub fn add(&mut self, handle: &CounterHandle, delta: f64) {
        let cell = self.cell(handle);
        cell.value = (cell.value + delta).max(0.0);
    }
}

impl CounterRegistry {
    /// Take the registry write lock once and return a batched writer for
    /// applying a sequence of updates through handles of this registry.
    pub fn writer(&self) -> CounterWriter<'_> {
        CounterWriter {
            registry: self,
            inner: self.inner.write(),
        }
    }
}

impl CounterHandle {
    /// Add `delta` to the counter (negative deltas are allowed but the value
    /// is clamped at zero, as hardware counters never read negative).
    pub fn add(&self, delta: f64) {
        let mut inner = self.registry.inner.write();
        let cell = &mut inner.cells[self.index];
        cell.value = (cell.value + delta).max(0.0);
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.add(1.0);
    }

    /// Overwrite the counter value (used by gauge-style counters such as
    /// "bytes per second over the last interval"). Clamped at zero.
    pub fn set(&self, value: f64) {
        let mut inner = self.registry.inner.write();
        inner.cells[self.index].value = value.max(0.0);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.registry.inner.read().cells[self.index].value
    }

    /// Counter name.
    pub fn name(&self) -> String {
        self.registry.inner.read().cells[self.index]
            .name
            .to_string()
    }

    /// Counter kind.
    pub fn kind(&self) -> CounterKind {
        self.registry.inner.read().cells[self.index].kind
    }
}

impl CounterSnapshot {
    fn position(&self, name: &str) -> Option<usize> {
        self.values
            .binary_search_by(|(n, _, _)| (**n).cmp(name))
            .ok()
    }

    /// Value of a named counter, if present.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.position(name).map(|i| self.values[i].2)
    }

    /// Kind of a named counter, if present.
    pub fn kind(&self, name: &str) -> Option<CounterKind> {
        self.position(name).map(|i| self.values[i].1)
    }

    /// Iterate over `(name, kind, value)` triples in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, CounterKind, f64)> {
        self.values.iter().map(|(n, k, v)| (&**n, *k, *v))
    }

    /// All names of a given kind.
    pub fn names(&self, kind: CounterKind) -> Vec<&str> {
        self.iter()
            .filter(|(_, k, _)| *k == kind)
            .map(|(n, _, _)| n)
            .collect()
    }

    /// Number of counters in the snapshot.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Build a snapshot directly from `(name, kind, value)` triples
    /// (used by tests and by averaged multi-sample measurements). Names are
    /// deduplicated and sorted exactly as a map insert sequence would be:
    /// the last entry for a repeated name wins.
    pub fn from_triples<I: IntoIterator<Item = (String, CounterKind, f64)>>(iter: I) -> Self {
        let map: BTreeMap<String, (CounterKind, f64)> =
            iter.into_iter().map(|(n, k, v)| (n, (k, v))).collect();
        CounterSnapshot {
            values: map
                .into_iter()
                .map(|(n, (k, v))| (Arc::from(n.as_str()), k, v))
                .collect(),
        }
    }

    /// Pointwise average of several snapshots sharing the same counter set.
    /// Counters missing from some snapshots average only over the snapshots
    /// that contain them. Returns an empty snapshot for an empty input.
    pub fn average(snapshots: &[CounterSnapshot]) -> CounterSnapshot {
        let mut sums: BTreeMap<String, (CounterKind, f64, u32)> = BTreeMap::new();
        for snap in snapshots {
            for (name, kind, value) in snap.iter() {
                let entry = sums.entry(name.to_string()).or_insert((kind, 0.0, 0));
                entry.1 += value;
                entry.2 += 1;
            }
        }
        CounterSnapshot::from_triples(
            sums.into_iter()
                .map(|(n, (k, sum, cnt))| (n, k, sum / cnt as f64)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_update() {
        let reg = CounterRegistry::new();
        let c = reg.register("rx_bytes", CounterKind::Performance);
        c.add(100.0);
        c.add(50.0);
        assert_eq!(c.value(), 150.0);
        assert_eq!(c.name(), "rx_bytes");
        assert_eq!(c.kind(), CounterKind::Performance);
    }

    #[test]
    fn duplicate_registration_shares_storage() {
        let reg = CounterRegistry::new();
        let a = reg.register("cache_miss", CounterKind::Diagnostic);
        let b = reg.register("cache_miss", CounterKind::Diagnostic);
        a.incr();
        b.incr();
        assert_eq!(a.value(), 2.0);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn values_never_go_negative() {
        let reg = CounterRegistry::new();
        let c = reg.register("x", CounterKind::Diagnostic);
        c.add(-5.0);
        assert_eq!(c.value(), 0.0);
        c.set(-1.0);
        assert_eq!(c.value(), 0.0);
    }

    #[test]
    fn snapshot_is_immutable_copy() {
        let reg = CounterRegistry::new();
        let c = reg.register("pps", CounterKind::Performance);
        c.set(10.0);
        let snap = reg.snapshot();
        c.set(99.0);
        assert_eq!(snap.value("pps"), Some(10.0));
        assert_eq!(reg.snapshot().value("pps"), Some(99.0));
    }

    #[test]
    fn names_filtered_by_kind() {
        let reg = CounterRegistry::new();
        reg.register("b_diag", CounterKind::Diagnostic);
        reg.register("a_perf", CounterKind::Performance);
        reg.register("a_diag", CounterKind::Diagnostic);
        assert_eq!(reg.names(CounterKind::Diagnostic), vec!["a_diag", "b_diag"]);
        assert_eq!(reg.names(CounterKind::Performance), vec!["a_perf"]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = CounterRegistry::new();
        let c = reg.register("x", CounterKind::Performance);
        c.set(42.0);
        reg.reset();
        assert_eq!(c.value(), 0.0);
    }

    #[test]
    fn clones_share_state() {
        let reg = CounterRegistry::new();
        let reg2 = reg.clone();
        let c = reg.register("shared", CounterKind::Diagnostic);
        c.incr();
        assert_eq!(reg2.snapshot().value("shared"), Some(1.0));
    }

    #[test]
    fn snapshot_average() {
        let a = CounterSnapshot::from_triples([("x".to_string(), CounterKind::Performance, 2.0)]);
        let b = CounterSnapshot::from_triples([("x".to_string(), CounterKind::Performance, 4.0)]);
        let avg = CounterSnapshot::average(&[a, b]);
        assert_eq!(avg.value("x"), Some(3.0));
        assert!(CounterSnapshot::average(&[]).is_empty());
    }

    #[test]
    fn batched_writer_matches_per_handle_updates() {
        let reg = CounterRegistry::new();
        let gauge = reg.register("gauge", CounterKind::Performance);
        let acc = reg.register("acc", CounterKind::Diagnostic);
        {
            let mut w = reg.writer();
            w.set(&gauge, 5.0);
            w.add(&acc, 2.0);
            w.add(&acc, -10.0); // clamped at zero, like CounterHandle::add
            w.set(&gauge, -1.0); // clamped at zero, like CounterHandle::set
        }
        assert_eq!(gauge.value(), 0.0);
        assert_eq!(acc.value(), 0.0);
        let mut w = reg.writer();
        w.add(&acc, 3.5);
        drop(w);
        assert_eq!(acc.value(), 3.5);
    }

    #[test]
    fn get_finds_existing_only() {
        let reg = CounterRegistry::new();
        assert!(reg.get("missing").is_none());
        reg.register("present", CounterKind::Performance);
        assert!(reg.get("present").is_some());
    }
}
