//! Deterministic, forkable pseudo-random number generation.
//!
//! Every stochastic decision in the workspace — search-point mutation,
//! simulated-annealing acceptance, workload jitter — flows through
//! [`SimRng`] so that an entire search campaign is reproducible from one
//! `u64` seed. The generator is xoshiro256**-style built on a SplitMix64
//! seeder; it has no external dependencies so the substrate crates stay
//! dependency-light (the search crates additionally use `rand` for its
//! distribution helpers, seeded from values produced here).

use serde::{Deserialize, Serialize};

/// SplitMix64 step, used to expand a single `u64` seed into generator state
/// and to derive independent child streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256** core).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator identified by `stream`.
    ///
    /// Forking lets one campaign seed drive many independent components
    /// (e.g. one stream per search dimension) without the components'
    /// draws interleaving and perturbing each other when code changes.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits give a uniformly distributed double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_u64: lo {lo} > hi {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection-free mapping is fine here: modulo bias over a 64-bit
        // draw is negligible for the small ranges the search uses.
        lo + self.next_u64() % (span + 1)
    }

    /// A uniform usize in `[lo, hi)` (half-open, like slice indexing).
    /// Panics if the range is empty.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index: empty range");
        (self.next_u64() % len as u64) as usize
    }

    /// A Bernoulli draw with probability `p` of returning `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Pick a uniformly random element of a slice. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 produced {same}/32 identical draws");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let root = SimRng::new(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let mut c1b = root.fork(1);
        let a: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| c1b.next_u64()).collect();
        assert_eq!(a, b, "same stream id must replay identically");
        let c: Vec<u64> = (0..16).map(|_| c2.next_u64()).collect();
        assert_ne!(a, c, "different stream ids must diverge");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut r = SimRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.gen_range_u64(3, 7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn gen_bool_rate_roughly_matches_p() {
        let mut r = SimRng::new(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SimRng::new(13);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
