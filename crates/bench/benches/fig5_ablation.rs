//! Figure-5 bench: the Perf/Diag × with/without-MFS ablation variants of
//! the Collie search, each run with a shortened simulated budget. Verifies
//! the ablation machinery (signal switching, MFS toggling) does not change
//! the campaign's wall-clock cost class.

use collie_core::engine::WorkloadEngine;
use collie_core::search::{run_search, SearchConfig, SignalMode};
use collie_core::space::SearchSpace;
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/one_hour_variant");
    group.sample_size(10);
    let variants = [
        ("perf_no_mfs", SignalMode::Performance, false),
        ("diag_no_mfs", SignalMode::Diagnostic, false),
        ("perf_mfs", SignalMode::Performance, true),
        ("diag_mfs", SignalMode::Diagnostic, true),
    ];
    for (name, signal, use_mfs) in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(signal, use_mfs),
            |b, &(signal, use_mfs)| {
                b.iter(|| {
                    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
                    let space = SearchSpace::for_host(&SubsystemId::F.host());
                    let config = SearchConfig::collie(29)
                        .with_signal(signal)
                        .with_mfs(use_mfs)
                        .with_budget(SimDuration::from_secs(3600));
                    black_box(run_search(&mut engine, &space, &config))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation_variants);
criterion_main!(benches);
