//! Table-2 bench: replaying every catalogued anomaly's concrete trigger.
//! Measures the cost of one full anomaly replay (measurement + detection)
//! and of the whole 18-row table regeneration.

use collie_core::catalog::KnownAnomaly;
use collie_core::engine::WorkloadEngine;
use collie_core::monitor::AnomalyMonitor;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_single_anomaly_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/replay");
    for id in [1u32, 4, 9, 13, 14, 18] {
        let anomaly = KnownAnomaly::by_id(id).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(id), &anomaly, |b, anomaly| {
            let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
            let monitor = AnomalyMonitor::new();
            b.iter(|| black_box(monitor.measure_and_assess(&mut engine, &anomaly.trigger)));
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    c.bench_function("table2/all_18_rows", |b| {
        let monitor = AnomalyMonitor::new();
        b.iter(|| {
            let mut reproduced = 0usize;
            for anomaly in KnownAnomaly::all() {
                let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
                let (_, verdict) = monitor.measure_and_assess(&mut engine, &anomaly.trigger);
                if verdict.symptom == Some(anomaly.symptom) {
                    reproduced += 1;
                }
            }
            black_box(reproduced)
        })
    });
}

criterion_group!(benches, bench_single_anomaly_replay, bench_full_table);
criterion_main!(benches);
