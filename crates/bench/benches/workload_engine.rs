//! Micro-benchmarks of the simulator and workload engine themselves: how
//! fast one "hardware experiment" is evaluated, how fast points are mutated
//! and translated, and how expensive MFS extraction is. These are the costs
//! every campaign pays thousands of times, so regressions here directly
//! stretch the fig4/fig5 harness runtime.

use collie_core::catalog::KnownAnomaly;
use collie_core::engine::WorkloadEngine;
use collie_core::monitor::{AnomalyMonitor, MfsExtractor};
use collie_core::space::{SearchPoint, SearchSpace};
use collie_rnic::subsystems::SubsystemId;
use collie_sim::rng::SimRng;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_evaluate(c: &mut Criterion) {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let benign = SearchPoint::benign();
    let anomalous = KnownAnomaly::by_id(10).unwrap().trigger;
    c.bench_function("evaluate/benign_point", |b| {
        b.iter(|| black_box(engine.measure(black_box(&benign))))
    });
    c.bench_function("evaluate/anomalous_point", |b| {
        b.iter(|| black_box(engine.measure(black_box(&anomalous))))
    });
}

fn bench_space_operations(c: &mut Criterion) {
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let mut rng = SimRng::new(7);
    let point = space.random_point(&mut rng);
    c.bench_function("space/random_point", |b| {
        b.iter(|| black_box(space.random_point(&mut rng)))
    });
    c.bench_function("space/mutate", |b| {
        b.iter(|| black_box(space.mutate(black_box(&point), &mut rng)))
    });
    let engine = WorkloadEngine::for_catalog(SubsystemId::F);
    c.bench_function("engine/translate", |b| {
        b.iter(|| black_box(engine.translate(black_box(&point))))
    });
}

/// The incremental-evaluation ablation on a seeded single-knob mutation
/// chain — the same access pattern a campaign's proposal stream produces.
/// `chain/scratch` keeps the delta caches off, `chain/incremental` turns
/// them on; both cycle through an identical pre-built chain so the only
/// difference is per-flow / per-direction stage reuse.
fn bench_mutation_chain(c: &mut Criterion) {
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let mut rng = SimRng::new(collie_bench::DEFAULT_SEEDS[0]);
    let mut chain = Vec::with_capacity(512);
    let mut point = SearchPoint::benign();
    for _ in 0..512 {
        point = space.mutate(&point, &mut rng);
        chain.push(point.clone());
    }
    for (label, incremental) in [("chain/scratch", false), ("chain/incremental", true)] {
        let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
        engine.set_incremental(incremental);
        let mut index = 0usize;
        c.bench_function(label, |b| {
            b.iter(|| {
                let measurement = black_box(engine.measure(black_box(&chain[index])));
                index = (index + 1) % chain.len();
                measurement
            })
        });
    }
}

fn bench_mfs_extraction(c: &mut Criterion) {
    c.bench_function("mfs/extract_anomaly_1", |b| {
        b.iter(|| {
            let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let monitor = AnomalyMonitor::new();
            let space = SearchSpace::for_host(&SubsystemId::F.host());
            let anomaly = KnownAnomaly::by_id(1).unwrap();
            let mut evaluator = collie_core::eval::Evaluator::new(&mut engine);
            let mut extractor = MfsExtractor::new(&mut evaluator, &monitor, &space);
            black_box(extractor.extract(&anomaly.trigger, anomaly.symptom))
        })
    });
}

criterion_group!(
    benches,
    bench_evaluate,
    bench_space_operations,
    bench_mutation_chain,
    bench_mfs_extraction
);
criterion_main!(benches);
