//! Table-1 bench: the cost of one baseline experiment on every catalogued
//! subsystem (A–H). Used to confirm the simulator's per-experiment cost is
//! uniform across RNIC models and host platforms, so campaign runtimes in
//! fig4/fig5 are not skewed by one subsystem being slower to simulate.

use collie_core::engine::WorkloadEngine;
use collie_core::space::SearchPoint;
use collie_rnic::subsystems::SubsystemId;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baseline_per_subsystem(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/baseline_experiment");
    for id in SubsystemId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            let mut engine = WorkloadEngine::for_catalog(id);
            let point = SearchPoint::benign();
            b.iter(|| black_box(engine.measure(black_box(&point))));
        });
    }
    group.finish();
}

fn bench_subsystem_construction(c: &mut Criterion) {
    c.bench_function("table1/build_subsystem_f", |b| {
        b.iter(|| black_box(SubsystemId::F.build()))
    });
}

criterion_group!(
    benches,
    bench_baseline_per_subsystem,
    bench_subsystem_construction
);
criterion_main!(benches);
