//! Figure-6 bench: recording and normalising the diagnostic-counter trace
//! of a campaign, and the per-experiment overhead of trace recording.

use collie_core::engine::WorkloadEngine;
use collie_core::report::TraceSeries;
use collie_core::search::{run_search, SearchConfig};
use collie_core::space::SearchSpace;
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("fig6/30min_collie_trace", |b| {
        b.iter(|| {
            let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
            let space = SearchSpace::for_host(&SubsystemId::F.host());
            let config = SearchConfig::collie(31).with_budget(SimDuration::from_secs(1800));
            let outcome = run_search(&mut engine, &space, &config);
            black_box(TraceSeries::from_outcome(&outcome))
        })
    });
}

fn bench_trace_normalisation(c: &mut Criterion) {
    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
    let space = SearchSpace::for_host(&SubsystemId::F.host());
    let config = SearchConfig::collie(37).with_budget(SimDuration::from_secs(3600));
    let outcome = run_search(&mut engine, &space, &config);
    c.bench_function("fig6/normalise_trace", |b| {
        b.iter(|| black_box(outcome.trace.normalized()))
    });
}

criterion_group!(benches, bench_trace_generation, bench_trace_normalisation);
criterion_main!(benches);
