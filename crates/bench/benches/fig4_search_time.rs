//! Figure-4 bench: the cost of running one search campaign per strategy
//! (random, BO, Collie) on subsystem F with a shortened simulated budget.
//! The full 10-hour campaigns live in the `fig4` binary; the bench tracks
//! the wall-clock cost of the campaign machinery so the harness stays fast.

use collie_core::engine::WorkloadEngine;
use collie_core::search::{run_search, SearchConfig, SearchStrategy};
use collie_core::space::SearchSpace;
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/one_hour_campaign");
    group.sample_size(10);
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::Bayesian,
        SearchStrategy::SimulatedAnnealing,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
                    let space = SearchSpace::for_host(&SubsystemId::F.host());
                    let config = SearchConfig {
                        strategy,
                        ..SearchConfig::collie(17)
                    }
                    .with_budget(SimDuration::from_secs(3600));
                    black_box(run_search(&mut engine, &space, &config))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
