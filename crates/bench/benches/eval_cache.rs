//! Evaluation-cache bench: the same Collie campaign on subsystem F with the
//! memoized evaluator on (default) and off (the uncached reference path).
//!
//! The two variants produce bit-identical `SearchOutcome`s — memoization
//! only skips the flow-model recompute, never the simulated cost accounting
//! — so the whole difference between the two timings is the cache win. An
//! assertion below keeps the bench honest about that identity.

use collie_core::engine::WorkloadEngine;
use collie_core::search::{run_search, run_search_with_stats, SearchConfig};
use collie_core::space::SearchSpace;
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn config(memoize: bool) -> SearchConfig {
    SearchConfig::collie(17)
        .with_budget(SimDuration::from_secs(2 * 3600))
        .with_memoization(memoize)
}

fn bench_eval_cache(c: &mut Criterion) {
    // Honesty check: the cached and uncached campaigns must agree bit for
    // bit (discoveries, milestones, elapsed simulated time) before their
    // timings are worth comparing.
    {
        let space = SearchSpace::for_host(&SubsystemId::F.host());
        let mut cached_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let (cached, stats) = run_search_with_stats(&mut cached_engine, &space, &config(true));
        let mut uncached_engine = WorkloadEngine::for_catalog(SubsystemId::F);
        let uncached = run_search(&mut uncached_engine, &space, &config(false));
        assert_eq!(cached, uncached, "memoization changed the outcome");
        assert!(stats.hits > 0, "campaign never hit the cache: {stats:?}");
        eprintln!(
            "eval cache: {} hits / {} misses ({:.0}% hit rate) over a 2-hour Collie campaign",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }

    let mut group = c.benchmark_group("eval_cache/collie_2h_subsystem_f");
    group.sample_size(10);
    for (label, memoize) in [("memoized", true), ("uncached", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut engine = WorkloadEngine::for_catalog(SubsystemId::F);
                let space = SearchSpace::for_host(&SubsystemId::F.host());
                black_box(run_search(&mut engine, &space, &config(memoize)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval_cache);
criterion_main!(benches);
