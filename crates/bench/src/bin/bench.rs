//! The machine-readable perf harness: runs the fig4/fig5/fig7 campaign
//! grids plus the `eval_cache` and `workload_engine` micro-benches and
//! writes one `BENCH_<name>.json` per bench — throughput (evals/sec), avg
//! and p99 compute latency, and cache computed/served counters per grid
//! cell — so every PR has a perf trajectory to diff against.
//!
//! Usage:
//!
//! ```text
//! bench [--smoke] [--out DIR]     # run the benches, write BENCH_*.json
//! bench --validate FILE...       # schema-check previously emitted files
//! ```
//!
//! `--smoke` is the CI reduced-budget mode (shorter simulated budgets, one
//! seed per grid row); the emitted schema is identical. Every emitted file
//! is self-validated with the same `validate_bench_report` the CI
//! `bench-smoke` job runs.
#![forbid(unsafe_code)]

use collie_bench::{
    bench_report, default_workers, run_campaign_matrix_report, run_fabric_campaign_matrix_report,
    validate_bench_report, BenchCell, BenchReport, CampaignSpec, MatrixOptions, DEFAULT_SEEDS,
};
use collie_core::engine::WorkloadEngine;
use collie_core::eval::{CacheTotals, EvalProfile, EvalStats, SharedUse};
use collie_core::search::{SearchConfig, SignalMode};
use collie_core::space::{SearchPoint, SearchSpace};
use collie_rnic::subsystems::SubsystemId;
use collie_rnic::workload::{Opcode, Transport};
use collie_sim::rng::SimRng;
use collie_sim::time::SimDuration;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(position) = args.iter().position(|arg| arg == "--validate") {
        std::process::exit(validate_files(&args[position + 1..]));
    }
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let out_dir = args
        .iter()
        .position(|arg| arg == "--out")
        .and_then(|position| args.get(position + 1))
        .map(String::as_str)
        .unwrap_or(".");

    let mode = if smoke { "smoke" } else { "full" };
    let seeds: &[u64] = if smoke {
        &DEFAULT_SEEDS[..1]
    } else {
        &DEFAULT_SEEDS[..]
    };
    let subsystem = SubsystemId::F;
    let workers = default_workers();
    let options = MatrixOptions::new(workers);

    let mut failures = 0;
    let mut emit = |report: &BenchReport| {
        let path = Path::new(out_dir).join(BenchReport::file_name(&report.name));
        if let Err(violation) = validate_bench_report(report) {
            eprintln!("bench {}: INVALID: {violation}", report.name);
            failures += 1;
        }
        let json = serde_json::to_string_pretty(report).unwrap_or_else(|_| "{}".to_string());
        if let Err(error) = std::fs::write(&path, json + "\n") {
            eprintln!(
                "bench {}: cannot write {}: {error}",
                report.name,
                path.display()
            );
            failures += 1;
            return;
        }
        let evals: u64 = report.cells.iter().map(|cell| cell.evals).sum();
        let wall: f64 = report.cells.iter().map(|cell| cell.wall_secs).sum();
        eprintln!(
            "bench {}: {} cells, {evals} evals, {wall:.2} s cell wall-clock, \
             cache totals {:?} -> {}",
            report.name,
            report.cells.len(),
            report.totals,
            path.display()
        );
    };

    // The two-host strategy grid (fig4's matrix).
    let grid_budget = if smoke {
        SimDuration::from_secs(900)
    } else {
        SimDuration::from_secs(10 * 3600)
    };
    let fig4_configs = [
        SearchConfig::random(0).with_budget(grid_budget),
        SearchConfig::bayesian(0).with_budget(grid_budget),
        SearchConfig::collie(0).with_budget(grid_budget),
    ];
    let cells = grid(subsystem, &fig4_configs, seeds);
    emit(&bench_report(
        "fig4",
        mode,
        &cells,
        &run_campaign_matrix_report(&cells, &options),
    ));

    // The ablation grid (fig5's matrix).
    let fig5_configs = [
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Performance)
            .with_budget(grid_budget),
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Diagnostic)
            .with_budget(grid_budget),
        SearchConfig::collie(0)
            .with_signal(SignalMode::Performance)
            .with_budget(grid_budget),
        SearchConfig::collie(0)
            .with_signal(SignalMode::Diagnostic)
            .with_budget(grid_budget),
    ];
    let cells = grid(subsystem, &fig5_configs, seeds);
    emit(&bench_report(
        "fig5",
        mode,
        &cells,
        &run_campaign_matrix_report(&cells, &options),
    ));

    // The fabric strategy grid (fig7's matrix).
    let fabric_budget = if smoke {
        SimDuration::from_secs(1800)
    } else {
        SimDuration::from_secs(10 * 3600)
    };
    let fig7_configs = [
        SearchConfig::random(0).with_budget(fabric_budget),
        SearchConfig::bayesian(0).with_budget(fabric_budget),
        SearchConfig::collie(0).with_budget(fabric_budget),
    ];
    let cells = grid(subsystem, &fig7_configs, seeds);
    emit(&bench_report(
        "fig7",
        mode,
        &cells,
        &run_fabric_campaign_matrix_report(&cells, &options),
    ));

    emit(&eval_cache_bench(subsystem, mode, grid_budget));
    emit(&workload_engine_bench(
        subsystem,
        mode,
        if smoke { 2_000 } else { 20_000 },
    ));

    if failures > 0 {
        eprintln!("bench: {failures} report(s) failed");
        std::process::exit(1);
    }
}

/// Every `configs × seeds` cell, in grid order.
fn grid(subsystem: SubsystemId, configs: &[SearchConfig], seeds: &[u64]) -> Vec<CampaignSpec> {
    configs
        .iter()
        .flat_map(|config| {
            seeds
                .iter()
                .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        })
        .collect()
}

/// The memoization bench: the same Collie campaign with the memo cache on
/// and off (no shared matrix cache, so the comparison is the local cache
/// alone — the `eval_cache` Criterion bench's headline, as a tracked
/// number).
fn eval_cache_bench(subsystem: SubsystemId, mode: &str, budget: SimDuration) -> BenchReport {
    let memoized = SearchConfig::collie(0).with_budget(budget);
    let uncached = SearchConfig {
        memoize: false,
        ..memoized.clone()
    };
    let cells = [
        CampaignSpec::seeded(subsystem, &memoized, DEFAULT_SEEDS[0]),
        CampaignSpec::seeded(subsystem, &uncached, DEFAULT_SEEDS[0]),
    ];
    let report = run_campaign_matrix_report(
        &cells,
        &MatrixOptions::new(default_workers()).without_shared_cache(),
    );
    let labels = ["memoized", "uncached"];
    BenchReport {
        name: "eval_cache".to_string(),
        mode: mode.to_string(),
        cells: labels
            .iter()
            .zip(&report.cells)
            .map(|(label, cell)| {
                BenchCell::from_profile(
                    label,
                    DEFAULT_SEEDS[0],
                    cell.wall_secs,
                    &EvalProfile {
                        stats: cell.stats,
                        shared: cell.shared,
                        compute_micros: cell.compute_micros.clone(),
                        incremental: cell.incremental,
                    },
                )
            })
            .collect(),
        totals: report.cache,
    }
}

/// The raw flow-model bench: per-call latency of `WorkloadEngine::measure`
/// on a benign and an anomalous workload with no cache anywhere, plus the
/// incremental ablation — the same seeded single-knob mutation chain
/// measured three ways: from scratch (a fresh engine per point, the
/// baseline the differential suite also compares against), on one warm
/// engine with the delta caches off, and on one warm engine with the delta
/// caches on. The chain is what a campaign's proposal stream looks like
/// (each point differs from its predecessor in exactly one knob), so the
/// chain-fresh / chain-incremental throughput ratio is the headline the
/// acceptance gate tracks; chain-scratch isolates how much of it comes
/// from reuse rather than from keeping the engine alive.
fn workload_engine_bench(subsystem: SubsystemId, mode: &str, iterations: usize) -> BenchReport {
    let anomalous = {
        let mut point = SearchPoint::benign();
        point.transport = Transport::Ud;
        point.opcode = Opcode::Send;
        point.wqe_batch = 64;
        point.recv_queue_depth = 256;
        point.mtu = 2048;
        point.messages = vec![2048];
        point
    };
    let run_cell =
        |label: &str, incremental: bool, fresh: bool, points: &dyn Fn(usize) -> SearchPoint| {
            let mut engine = WorkloadEngine::for_catalog(subsystem);
            engine.set_incremental(incremental);
            let mut micros = Vec::with_capacity(iterations);
            let started = Instant::now();
            for i in 0..iterations {
                let point = points(i);
                let call = Instant::now();
                if fresh {
                    // From-scratch evaluation: the engine is rebuilt per point,
                    // so nothing can carry over between measurements.
                    engine = WorkloadEngine::for_catalog(subsystem);
                }
                let _ = engine.measure(&point);
                micros.push(call.elapsed().as_micros() as u64);
            }
            BenchCell::from_profile(
                label,
                0,
                started.elapsed().as_secs_f64(),
                &EvalProfile {
                    stats: EvalStats {
                        hits: 0,
                        misses: iterations as u64,
                    },
                    shared: SharedUse::default(),
                    compute_micros: micros,
                    incremental: engine.subsystem().incremental_use(),
                },
            )
        };
    let benign = SearchPoint::benign();
    let chain = mutation_chain(subsystem, iterations);
    // The incremental leg honours COLLIE_INCREMENTAL so the CI env leg
    // genuinely exercises the from-scratch path end to end.
    let incremental_mode = SearchConfig::default_incremental();
    let cells = vec![
        run_cell("benign", false, false, &|_| benign.clone()),
        run_cell("anomalous", false, false, &|_| anomalous.clone()),
        run_cell("chain-fresh", false, true, &|i| chain[i].clone()),
        run_cell("chain-scratch", false, false, &|i| chain[i].clone()),
        run_cell("chain-incremental", incremental_mode, false, &|i| {
            chain[i].clone()
        }),
    ];
    BenchReport {
        name: "workload_engine".to_string(),
        mode: mode.to_string(),
        cells,
        totals: CacheTotals::default(),
    }
}

/// A seeded random walk of single-knob mutations from the benign point —
/// the proposal stream shape of an annealing campaign, reproduced outside
/// any campaign so the two chain cells measure the identical point list.
fn mutation_chain(subsystem: SubsystemId, length: usize) -> Vec<SearchPoint> {
    let space = SearchSpace::for_host(&subsystem.host());
    let mut rng = SimRng::new(DEFAULT_SEEDS[0]);
    let mut points = Vec::with_capacity(length);
    let mut current = SearchPoint::benign();
    for _ in 0..length {
        points.push(current.clone());
        current = space.mutate(&current, &mut rng);
    }
    points
}

/// `--validate FILE...`: parse and schema-check emitted reports; the CI
/// `bench-smoke` job's gate. Returns the process exit code.
fn validate_files(files: &[String]) -> i32 {
    if files.is_empty() {
        eprintln!("bench --validate: no files given");
        return 1;
    }
    let mut failures = 0;
    for file in files {
        let verdict = std::fs::read_to_string(file)
            .map_err(|error| format!("cannot read: {error}"))
            .and_then(|json| {
                serde_json::from_str::<BenchReport>(&json)
                    .map_err(|error| format!("cannot parse: {error}"))
            })
            .and_then(|report| validate_bench_report(&report));
        match verdict {
            Ok(()) => eprintln!("bench --validate: {file}: OK"),
            Err(violation) => {
                eprintln!("bench --validate: {file}: INVALID: {violation}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}
