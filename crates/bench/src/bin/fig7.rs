//! Regenerates the fabric campaign grid (no direct paper counterpart —
//! this extends Figures 4/6 to the multi-host fabric): random,
//! BO-surrogate, and counter-guided fabric campaigns on subsystem F's
//! homogeneous fleet, hunting cross-host PFC pause storms where a victim
//! flow collapses while the culprit host still looks healthy.
//!
//! All campaigns (3 strategies × 3 seeds, the same strategy column as the
//! two-host Figure 4) run as one parallel matrix via the shared bounded
//! worker pool.
#![forbid(unsafe_code)]

use collie_bench::{
    bench_report, default_workers, fmt_minutes, run_fabric_campaign_matrix_report, text_table,
    CampaignSpec, MatrixOptions, DEFAULT_SEEDS,
};
use collie_core::report::{to_json, FabricGridRow};
use collie_core::search::SearchConfig;
use collie_rnic::subsystems::SubsystemId;
use std::time::Instant;

fn main() {
    let subsystem = SubsystemId::F;
    let configs = [
        ("Random", SearchConfig::random(0)),
        ("BO", SearchConfig::bayesian(0)),
        ("Collie", SearchConfig::collie(0)),
    ];

    let cells: Vec<CampaignSpec> = configs
        .iter()
        .flat_map(|(_, config)| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        })
        .collect();
    let started = Instant::now();
    let report = run_fabric_campaign_matrix_report(&cells, &MatrixOptions::new(default_workers()));
    let wall = started.elapsed();
    let bench = bench_report("fig7", "full", &cells, &report);
    let matrix: Vec<_> = report
        .cells
        .into_iter()
        .map(|cell| (cell.outcome, cell.stats))
        .collect();

    let mut rows = Vec::new();
    let mut table_rows = Vec::new();
    for (cell, (outcome, stats)) in cells.iter().zip(&matrix) {
        let row = FabricGridRow::from_outcome(outcome, cell.config.seed);
        table_rows.push(vec![
            row.strategy.clone(),
            row.seed.to_string(),
            row.discoveries.to_string(),
            row.cross_host.to_string(),
            fmt_minutes(row.first_cross_host_minutes),
            row.experiments.to_string(),
            row.skipped_by_mfs.to_string(),
            format!("{:.0}%", stats.hit_rate() * 100.0),
        ]);
        rows.push(row);
    }
    eprintln!(
        "matrix: {} fabric campaigns on {} workers in {:.2} s wall-clock",
        cells.len(),
        default_workers(),
        wall.as_secs_f64()
    );
    match SearchConfig::default_speculation() {
        Some(lookahead) => eprintln!(
            "speculation: in-campaign lookahead {lookahead} (COLLIE_SPECULATION); \
             outputs are bit-identical to serial"
        ),
        None => eprintln!("speculation: off (serial campaign loops)"),
    }

    println!(
        "Fabric grid: cross-host pause-storm campaigns on subsystem F \
         (10 simulated hours per campaign)\n"
    );
    println!(
        "{}",
        text_table(
            &[
                "Strategy",
                "Seed",
                "Discoveries",
                "Cross-host",
                "First cross-host (min)",
                "Experiments",
                "Skipped",
                "Cache hits"
            ],
            &table_rows
        )
    );
    println!("JSON:\n{}", to_json(&rows));
    // --json: the machine-readable per-cell perf block (same schema as the
    // bench bin's BENCH_fig7.json): cache hit-rate and wall-clock per cell.
    if std::env::args().any(|arg| arg == "--json") {
        println!(
            "BENCH JSON:\n{}",
            serde_json::to_string_pretty(&bench).unwrap_or_else(|_| "{}".to_string())
        );
    }
}
