//! Regenerates Figure 5: the ablation of Collie's two ingredients — which
//! counter family guides the search (performance vs diagnostic) and whether
//! the minimal-feature-set skip is applied.
//!
//! Shape targets from the paper: performance counters alone already find
//! most anomalies; diagnostic counters find more (notably the
//! cache-scalability anomalies #7/#8 that cause no end-to-end throughput
//! change at first); MFS roughly halves the time to cover the full set.
//!
//! All twelve campaigns (4 variants × 3 seeds) run as one parallel matrix.
#![forbid(unsafe_code)]

use collie_bench::{
    bench_report, default_workers, fmt_minutes, run_campaign_matrix_report, text_table,
    CampaignSpec, MatrixOptions, DEFAULT_SEEDS,
};
use collie_core::catalog::KnownAnomaly;
use collie_core::report::{time_to_find_rows, to_json};
use collie_core::search::{SearchConfig, SearchOutcome, SignalMode};
use collie_rnic::subsystems::SubsystemId;
use std::time::Instant;

fn main() {
    let subsystem = SubsystemId::F;
    let max_anomalies = KnownAnomaly::for_subsystem(subsystem).len();
    let configs = [
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Performance),
        SearchConfig::collie(0)
            .with_mfs(false)
            .with_signal(SignalMode::Diagnostic),
        SearchConfig::collie(0).with_signal(SignalMode::Performance),
        SearchConfig::collie(0).with_signal(SignalMode::Diagnostic),
    ];

    let cells: Vec<CampaignSpec> = configs
        .iter()
        .flat_map(|config| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        })
        .collect();
    let started = Instant::now();
    let report = run_campaign_matrix_report(&cells, &MatrixOptions::new(default_workers()));
    let wall = started.elapsed();
    let bench = bench_report("fig5", "full", &cells, &report);

    let mut matrix = report
        .cells
        .into_iter()
        .map(|cell| (cell.outcome, cell.stats));
    let mut all_rows = Vec::new();
    let mut table_rows = Vec::new();
    for config in &configs {
        let label = config.label();
        let outcomes: Vec<SearchOutcome> = matrix
            .by_ref()
            .take(DEFAULT_SEEDS.len())
            .map(|(o, _)| o)
            .collect();
        let found: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_known_anomalies().len())
            .collect();
        let triggered: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_triggered_anomalies().len())
            .collect();
        eprintln!(
            "{label}: distinct catalogued anomalies per seed = {found:?} \
             (triggered at least once: {triggered:?}, of {max_anomalies})"
        );
        let rows = time_to_find_rows(&label, &outcomes, max_anomalies);
        for row in &rows {
            if row.anomalies_found == 0 {
                continue;
            }
            table_rows.push(vec![
                row.strategy.clone(),
                row.anomalies_found.to_string(),
                fmt_minutes(row.mean_minutes),
                format!("{:.1}", row.std_minutes),
                format!("{}/{}", row.seeds_reaching, row.seeds_total),
            ]);
        }
        all_rows.extend(rows);
    }
    eprintln!(
        "matrix: {} campaigns on {} workers in {:.2} s wall-clock",
        cells.len(),
        default_workers(),
        wall.as_secs_f64()
    );
    match SearchConfig::default_speculation() {
        Some(lookahead) => eprintln!(
            "speculation: in-campaign lookahead {lookahead} (COLLIE_SPECULATION); \
             outputs are bit-identical to serial"
        ),
        None => eprintln!("speculation: off (serial campaign loops)"),
    }

    println!("Figure 5: counter-family and MFS ablation on subsystem F\n");
    println!(
        "{}",
        text_table(
            &[
                "Variant",
                "Anomalies found",
                "Mean minutes",
                "Std",
                "Seeds reaching"
            ],
            &table_rows
        )
    );
    println!("JSON:\n{}", to_json(&all_rows));
    // --json: the machine-readable per-cell perf block (same schema as the
    // bench bin's BENCH_fig5.json): cache hit-rate and wall-clock per cell.
    if std::env::args().any(|arg| arg == "--json") {
        println!(
            "BENCH JSON:\n{}",
            serde_json::to_string_pretty(&bench).unwrap_or_else(|_| "{}".to_string())
        );
    }
}
