//! Regenerates Table 2: the eighteen performance anomalies and their
//! necessary trigger conditions.
//!
//! For every catalogued anomaly the binary replays the Appendix-A concrete
//! trigger on its subsystem (F for the ConnectX-6 anomalies, H for the
//! Broadcom ones), checks that the expected symptom appears, extracts the
//! minimal feature set, and verifies that breaking one extracted condition
//! makes the anomaly disappear — the property that makes an MFS actionable
//! for application developers.
//!
//! Each anomaly owns a fresh subsystem copy, so the eighteen replays fan
//! out across the harness worker pool; within one replay, the repeated
//! measurements (four monitor samples per assessment, extraction probes,
//! condition-break probes of the same broken points) share one memoized
//! evaluator.
#![forbid(unsafe_code)]

use collie_bench::{default_workers, parallel_map, text_table};
use collie_core::catalog::KnownAnomaly;
use collie_core::engine::WorkloadEngine;
use collie_core::eval::Evaluator;
use collie_core::monitor::{AnomalyMonitor, FeatureCondition, MfsExtractor};
use collie_core::report::Table2Row;
use collie_core::space::{FeatureValue, SearchSpace};

fn replay(anomaly: &KnownAnomaly) -> Table2Row {
    let monitor = AnomalyMonitor::new();
    let mut engine = WorkloadEngine::for_catalog(anomaly.subsystem);
    let rnic = engine.subsystem().rnic.model.name().to_string();
    let space = SearchSpace::for_host(&anomaly.subsystem.host());
    let mut evaluator = Evaluator::new(&mut engine);
    let (_, verdict) = evaluator.measure_and_assess(&monitor, &anomaly.trigger);

    // Extract the MFS and verify it is actionable: a developer who breaks
    // one of its conditions (the §7.3 guidance) can reach a workload the
    // monitor considers healthy. The extracted set can be conservative (a
    // superset of the truly minimal conditions), so every condition is
    // tried and any one sufficing counts.
    let mut break_verified = false;
    if let Some(symptom) = verdict.symptom {
        let outcome = {
            let mut extractor = MfsExtractor::new(&mut evaluator, &monitor, &space);
            extractor.extract(&anomaly.trigger, symptom)
        };
        'conditions: for (feature, condition) in outcome.mfs.conditions.iter() {
            let numeric = |pick_min: bool| {
                let values = space
                    .alternatives(&anomaly.trigger, *feature)
                    .into_iter()
                    .filter_map(|v| match v {
                        FeatureValue::Number(n) => Some(n),
                        _ => None,
                    });
                if pick_min {
                    values.min().map(FeatureValue::Number)
                } else {
                    values.max().map(FeatureValue::Number)
                }
            };
            let replacements: Vec<FeatureValue> = match condition {
                FeatureCondition::AtLeast(_) => numeric(true).into_iter().collect(),
                FeatureCondition::AtMost(_) => numeric(false).into_iter().collect(),
                FeatureCondition::Equals(_) => space.alternatives(&anomaly.trigger, *feature),
            };
            for replacement in replacements {
                let mut broken = anomaly.trigger.clone();
                broken.apply(*feature, &replacement);
                let (_, broken_verdict) = evaluator.measure_and_assess(&monitor, &broken);
                if !broken_verdict.is_anomalous() {
                    break_verified = true;
                    break 'conditions;
                }
            }
        }
    }

    Table2Row {
        id: anomaly.id,
        subsystem: anomaly.subsystem.to_string(),
        rnic,
        new: anomaly.new,
        conditions: anomaly.conditions.clone(),
        expected_symptom: anomaly.symptom,
        observed_symptom: verdict.symptom,
        pause_ratio: verdict.pause_ratio,
        spec_fraction: verdict.spec_fraction,
        condition_break_verified: break_verified,
    }
}

fn main() {
    println!(
        "Search space size (nominal bounds of §4/§5): ~1e{:.0} points\n",
        SearchSpace::for_host(&collie_rnic::subsystems::SubsystemId::F.host())
            .nominal_cardinality()
            .log10()
    );

    let anomalies = KnownAnomaly::all();
    let records: Vec<Table2Row> = parallel_map(&anomalies, default_workers(), replay);
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|row| {
            vec![
                format!("#{}", row.id),
                row.rnic.clone(),
                row.subsystem.clone(),
                if row.new { "new" } else { "known" }.to_string(),
                row.conditions.join("; "),
                format!("{}", row.expected_symptom),
                row.observed_symptom
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "none".to_string()),
                format!("{:.2}%", row.pause_ratio * 100.0),
                format!("{:.0}%", row.spec_fraction * 100.0),
                if row.reproduced() { "yes" } else { "NO" }.to_string(),
                if row.condition_break_verified {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ]
        })
        .collect();

    println!("Table 2: performance anomalies and their trigger conditions (simulated replay)\n");
    println!(
        "{}",
        text_table(
            &[
                "Anomaly",
                "RNIC",
                "Subsys",
                "New",
                "Necessary conditions",
                "Expected",
                "Observed",
                "Pause",
                "Spec frac",
                "Reproduced",
                "Break verified"
            ],
            &rows
        )
    );
    let reproduced = records.iter().filter(|r| r.reproduced()).count();
    println!(
        "{reproduced}/{} anomalies reproduce their documented symptom.",
        records.len()
    );
    println!("JSON:\n{}", collie_core::report::to_json(&records));
}
