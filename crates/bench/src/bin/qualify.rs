//! Runs the discovery → remediation → verification loop over the full
//! anomaly catalog and maintains the persistent regression catalog.
//!
//! For every catalogued anomaly the binary replays the Appendix-A trigger on
//! its own subsystem and asks the [`collie_core::remedy::Qualifier`] to
//! apply the documented mitigations cumulatively, one at a time, verifying
//! after each step whether the anomaly actually cleared. The per-anomaly
//! verdicts are printed as a table (and a `JSON:` block for machines), and
//! the run fails if any paper-fixed anomaly (#3, #9, #10, #11, #12, #17,
//! #18) is not verified as fixed by documented fixes alone.
//!
//! Flags:
//!
//! * `--catalog <path>` — pre-seed from an existing regression catalog:
//!   known-cleared anomalies are skipped instead of re-qualified, and every
//!   cleared record is replayed under its recorded mitigations; a record
//!   that is anomalous again is reported as a regression and fails the run.
//! * `--out <path>` — write the (merged) regression catalog back to disk.
//! * `--json` — print only the `JSON:` block.
#![forbid(unsafe_code)]

use collie_bench::{default_workers, parallel_map, text_table};
use collie_core::catalog::KnownAnomaly;
use collie_core::mitigation::Mitigation;
use collie_core::remedy::{
    trigger_identity, QualificationRecord, Qualifier, RegressionCatalog, RegressionFlag,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    catalog: Option<PathBuf>,
    out: Option<PathBuf>,
    json_only: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        catalog: None,
        out: None,
        json_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--catalog" => {
                let path = args.next().expect("--catalog needs a path");
                options.catalog = Some(PathBuf::from(path));
            }
            "--out" => {
                let path = args.next().expect("--out needs a path");
                options.out = Some(PathBuf::from(path));
            }
            "--json" => options.json_only = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: qualify [--catalog <path>] [--out <path>] [--json]");
                std::process::exit(2);
            }
        }
    }
    options
}

fn verdict_cell(record: &QualificationRecord) -> String {
    match record.cleared_by {
        Some(by) if record.fixed() => format!("fixed by {by:?} ({})", by.kind()),
        Some(by) => format!("bypassed by {by:?} ({})", by.kind()),
        None if record.steps.is_empty() => "no documented fix".to_string(),
        None => "NOT CLEARED".to_string(),
    }
}

fn steps_cell(record: &QualificationRecord) -> String {
    if record.steps.is_empty() {
        return "-".to_string();
    }
    record
        .steps
        .iter()
        .map(|step| {
            let mark = if step.verdict.cleared { "ok" } else { "x" };
            format!("{:?} ({mark})", step.mitigation)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() -> ExitCode {
    let options = parse_args();

    let mut catalog = match &options.catalog {
        Some(path) => match RegressionCatalog::load(path) {
            Ok(catalog) => catalog,
            Err(e) => {
                eprintln!("failed to load {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => RegressionCatalog::new(),
    };

    // Regression watch first: replay every previously-cleared record under
    // its recorded mitigations before merging in this run's results.
    let regressions: Vec<RegressionFlag> = catalog.check_regressions();

    // Qualify every catalogued anomaly that the pre-seeded catalog does not
    // already record as cleared (the skip is the point of persisting it).
    let anomalies = KnownAnomaly::all();
    let (skipped, to_qualify): (Vec<&KnownAnomaly>, Vec<&KnownAnomaly>) =
        anomalies.iter().partition(|anomaly| {
            let identity = trigger_identity(
                anomaly.subsystem,
                anomaly.symptom,
                &[anomaly.id],
                &anomaly.trigger,
            );
            catalog.is_known_cleared(&identity)
        });

    let fresh: Vec<QualificationRecord> = parallel_map(&to_qualify, default_workers(), |anomaly| {
        Qualifier::for_subsystem(anomaly.subsystem).qualify_known(anomaly)
    });
    for record in &fresh {
        catalog.upsert(record.clone());
    }

    // Every anomaly now has a record: freshly qualified or carried over.
    let records: Vec<&QualificationRecord> = anomalies
        .iter()
        .filter_map(|anomaly| {
            catalog.get(&trigger_identity(
                anomaly.subsystem,
                anomaly.symptom,
                &[anomaly.id],
                &anomaly.trigger,
            ))
        })
        .collect();

    let paper_fixed = Mitigation::paper_fixed_anomalies();
    let unverified_fixes: Vec<u32> = paper_fixed
        .iter()
        .copied()
        .filter(|id| {
            !records
                .iter()
                .any(|r| r.anomaly_ids == vec![*id] && r.fixed())
        })
        .collect();

    if !options.json_only {
        let rows: Vec<Vec<String>> = records
            .iter()
            .map(|record| {
                let skipped_mark = if skipped.iter().any(|a| record.anomaly_ids == vec![a.id]) {
                    " (cached)"
                } else {
                    ""
                };
                vec![
                    record
                        .anomaly_ids
                        .iter()
                        .map(|id| format!("#{id}"))
                        .collect::<Vec<_>>()
                        .join("+"),
                    format!("{:?}", record.subsystem),
                    format!("{}", record.symptom),
                    steps_cell(record),
                    format!("{}{skipped_mark}", verdict_cell(record)),
                ]
            })
            .collect();
        println!("Qualification verdicts: mitigations applied cumulatively, one per step\n");
        println!(
            "{}",
            text_table(
                &[
                    "Anomaly",
                    "Subsys",
                    "Symptom",
                    "Steps (cumulative)",
                    "Verdict"
                ],
                &rows
            )
        );
        let fixed = records.iter().filter(|r| r.fixed()).count();
        let bypassed = records.iter().filter(|r| r.cleared() && !r.fixed()).count();
        println!(
            "{fixed}/{} fixed by documented fixes, {bypassed} bypass-only, {} without a \
             documented mitigation; {} carried over from the pre-seeded catalog.",
            records.len(),
            records.len() - fixed - bypassed,
            skipped.len()
        );
        for flag in &regressions {
            println!(
                "REGRESSION: {} on {:?} is anomalous again ({}) under its recorded mitigations",
                flag.identity, flag.subsystem, flag.residual_symptom
            );
        }
        if !unverified_fixes.is_empty() {
            println!(
                "FAILED: paper-fixed anomalies not verified as fixed: {}",
                unverified_fixes
                    .iter()
                    .map(|id| format!("#{id}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }

    if let Some(path) = &options.out {
        if let Err(e) = catalog.save(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        if !options.json_only {
            println!("Regression catalog written to {}", path.display());
        }
    }

    let owned: Vec<QualificationRecord> = records.into_iter().cloned().collect();
    println!("JSON:\n{}", collie_core::report::to_json(&owned));

    if regressions.is_empty() && unverified_fixes.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
