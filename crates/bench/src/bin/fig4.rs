//! Regenerates Figure 4: mean running time to find performance anomalies
//! with random input generation, Bayesian optimisation, and Collie, on
//! subsystem F with a 10-hour budget per search.
//!
//! Shape targets from the paper (absolute values depend on the simulated
//! substrate): random finds only the simple anomalies, BO finds slightly
//! more, Collie finds the most — ideally all 13 — and does so faster.

use collie_bench::{fmt_minutes, run_seeded_campaigns, text_table, DEFAULT_SEEDS};
use collie_core::catalog::KnownAnomaly;
use collie_core::report::{time_to_find_rows, to_json};
use collie_core::search::SearchConfig;
use collie_rnic::subsystems::SubsystemId;

fn main() {
    let subsystem = SubsystemId::F;
    let max_anomalies = KnownAnomaly::for_subsystem(subsystem).len();
    let configs = vec![
        ("Random", SearchConfig::random(0)),
        ("BO", SearchConfig::bayesian(0)),
        ("Collie", SearchConfig::collie(0)),
    ];

    let mut all_rows = Vec::new();
    let mut table_rows = Vec::new();
    for (label, config) in &configs {
        let outcomes = run_seeded_campaigns(subsystem, config, &DEFAULT_SEEDS);
        let found: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_known_anomalies().len())
            .collect();
        let triggered: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_triggered_anomalies().len())
            .collect();
        eprintln!(
            "{label}: distinct catalogued anomalies per seed = {found:?} \
             (triggered at least once: {triggered:?}, of {max_anomalies})"
        );
        let rows = time_to_find_rows(label, &outcomes, max_anomalies);
        for row in &rows {
            if row.anomalies_found == 0 {
                continue;
            }
            table_rows.push(vec![
                row.strategy.clone(),
                row.anomalies_found.to_string(),
                fmt_minutes(row.mean_minutes),
                format!("{:.1}", row.std_minutes),
                format!("{}/{}", row.seeds_reaching, row.seeds_total),
            ]);
        }
        all_rows.extend(rows);
    }

    println!(
        "Figure 4: mean time (simulated minutes) to find N distinct anomalies on subsystem F\n"
    );
    println!(
        "{}",
        text_table(
            &[
                "Strategy",
                "Anomalies found",
                "Mean minutes",
                "Std",
                "Seeds reaching"
            ],
            &table_rows
        )
    );
    println!("JSON:\n{}", to_json(&all_rows));
}
