//! Regenerates Figure 4: mean running time to find performance anomalies
//! with random input generation, Bayesian optimisation, and Collie, on
//! subsystem F with a 10-hour budget per search.
//!
//! Shape targets from the paper (absolute values depend on the simulated
//! substrate): random finds only the simple anomalies, BO finds slightly
//! more, Collie finds the most — ideally all 13 — and does so faster.
//!
//! All nine campaigns (3 strategies × 3 seeds) run as one parallel matrix;
//! the per-strategy grouping below only reads the results back in order.
#![forbid(unsafe_code)]

use collie_bench::{
    bench_report, default_workers, fmt_minutes, run_campaign_matrix_report, text_table,
    CampaignSpec, MatrixOptions, DEFAULT_SEEDS,
};
use collie_core::catalog::KnownAnomaly;
use collie_core::report::{time_to_find_rows, to_json};
use collie_core::search::{SearchConfig, SearchOutcome};
use collie_rnic::subsystems::SubsystemId;
use std::time::Instant;

fn main() {
    let subsystem = SubsystemId::F;
    let max_anomalies = KnownAnomaly::for_subsystem(subsystem).len();
    let configs = [
        ("Random", SearchConfig::random(0)),
        ("BO", SearchConfig::bayesian(0)),
        ("Collie", SearchConfig::collie(0)),
    ];

    let cells: Vec<CampaignSpec> = configs
        .iter()
        .flat_map(|(_, config)| {
            DEFAULT_SEEDS
                .iter()
                .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        })
        .collect();
    let started = Instant::now();
    let report = run_campaign_matrix_report(&cells, &MatrixOptions::new(default_workers()));
    let wall = started.elapsed();
    let bench = bench_report("fig4", "full", &cells, &report);

    let mut matrix = report
        .cells
        .into_iter()
        .map(|cell| (cell.outcome, cell.stats));
    let mut all_rows = Vec::new();
    let mut table_rows = Vec::new();
    for (label, _) in &configs {
        let (outcomes, stats): (Vec<SearchOutcome>, Vec<_>) =
            matrix.by_ref().take(DEFAULT_SEEDS.len()).unzip();
        let found: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_known_anomalies().len())
            .collect();
        let triggered: Vec<usize> = outcomes
            .iter()
            .map(|o| o.distinct_triggered_anomalies().len())
            .collect();
        let hit_rates: Vec<String> = stats
            .iter()
            .map(|s| format!("{:.0}%", s.hit_rate() * 100.0))
            .collect();
        eprintln!(
            "{label}: distinct catalogued anomalies per seed = {found:?} \
             (triggered at least once: {triggered:?}, of {max_anomalies}; \
             eval-cache hit rates {hit_rates:?})"
        );
        let rows = time_to_find_rows(label, &outcomes, max_anomalies);
        for row in &rows {
            if row.anomalies_found == 0 {
                continue;
            }
            table_rows.push(vec![
                row.strategy.clone(),
                row.anomalies_found.to_string(),
                fmt_minutes(row.mean_minutes),
                format!("{:.1}", row.std_minutes),
                format!("{}/{}", row.seeds_reaching, row.seeds_total),
            ]);
        }
        all_rows.extend(rows);
    }
    eprintln!(
        "matrix: {} campaigns on {} workers in {:.2} s wall-clock",
        cells.len(),
        default_workers(),
        wall.as_secs_f64()
    );
    match SearchConfig::default_speculation() {
        Some(lookahead) => eprintln!(
            "speculation: in-campaign lookahead {lookahead} (COLLIE_SPECULATION); \
             outputs are bit-identical to serial"
        ),
        None => eprintln!("speculation: off (serial campaign loops)"),
    }

    println!(
        "Figure 4: mean time (simulated minutes) to find N distinct anomalies on subsystem F\n"
    );
    println!(
        "{}",
        text_table(
            &[
                "Strategy",
                "Anomalies found",
                "Mean minutes",
                "Std",
                "Seeds reaching"
            ],
            &table_rows
        )
    );
    println!("JSON:\n{}", to_json(&all_rows));
    // --json: the machine-readable per-cell perf block (same schema as the
    // bench bin's BENCH_fig4.json): cache hit-rate and wall-clock per cell.
    if std::env::args().any(|arg| arg == "--json") {
        println!(
            "BENCH JSON:\n{}",
            serde_json::to_string_pretty(&bench).unwrap_or_else(|_| "{}".to_string())
        );
    }
}
