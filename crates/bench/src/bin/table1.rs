//! Regenerates Table 1: the eight RDMA subsystems under test.
//!
//! For each subsystem the binary prints the hardware row exactly as the
//! paper tabulates it, plus two sanity columns the paper implies but does
//! not print: the baseline throughput of a benign large-message workload
//! and its pause ratio (both should look healthy on every subsystem —
//! anomalies need the specific triggers of Table 2).
#![forbid(unsafe_code)]

use collie_bench::text_table;
use collie_core::engine::WorkloadEngine;
use collie_core::monitor::AnomalyMonitor;
use collie_core::space::SearchPoint;
use collie_rnic::subsystems::SubsystemId;

fn main() {
    let monitor = AnomalyMonitor::new();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for id in SubsystemId::ALL {
        let info = id.info();
        let mut engine = WorkloadEngine::for_catalog(id);
        let (measurement, verdict) =
            monitor.measure_and_assess(&mut engine, &SearchPoint::benign());
        rows.push(vec![
            info.id.to_string(),
            info.rnic.clone(),
            info.speed.clone(),
            info.cpu.clone(),
            info.pcie.clone(),
            info.nps.to_string(),
            info.memory.clone(),
            info.gpu.clone(),
            info.bios.clone(),
            info.kernel.clone(),
            format!("{:.1} Gbps", measurement.total_throughput().gbps()),
            format!("{:.4}%", verdict.pause_ratio * 100.0),
        ]);
        json_rows.push(serde_json::json!({
            "subsystem": info,
            "baseline_throughput_gbps": measurement.total_throughput().gbps(),
            "baseline_pause_ratio": verdict.pause_ratio,
            "baseline_anomalous": verdict.is_anomalous(),
        }));
    }

    println!("Table 1: testbed RDMA subsystem configurations (simulated)\n");
    println!(
        "{}",
        text_table(
            &[
                "Type",
                "RNIC",
                "Speed",
                "CPU",
                "PCIe",
                "NPS",
                "Memory",
                "GPU",
                "BIOS",
                "Kernel",
                "Baseline tput",
                "Pause ratio"
            ],
            &rows
        )
    );
    println!(
        "JSON:\n{}",
        serde_json::to_string_pretty(&json_rows).unwrap()
    );
}
