//! Regenerates Figure 6: the value of the Receive WQE Cache Miss diagnostic
//! counter over the course of the search, for random input generation,
//! simulated annealing without MFS, and Collie.
//!
//! Shape targets from the paper: the random trace stays low, the SA traces
//! drive the counter towards its maximum, and most anomaly discoveries
//! (markers) land while the counter sits in its high region; the Collie
//! trace shows flat segments right after each discovery (the time spent
//! extracting the MFS).
#![forbid(unsafe_code)]

use collie_bench::{run_seeded_campaigns, text_table};
use collie_core::report::{to_json, TraceSeries};
use collie_core::search::SearchConfig;
use collie_rnic::subsystems::SubsystemId;
use collie_sim::time::SimDuration;

fn main() {
    let subsystem = SubsystemId::F;
    // The paper's Figure 6 covers the first ~150 minutes of the search.
    let budget = SimDuration::from_secs(150 * 60);
    let configs = vec![
        ("Random", SearchConfig::random(0).with_budget(budget)),
        (
            "SA(Diag)",
            SearchConfig::collie(0).with_mfs(false).with_budget(budget),
        ),
        ("Collie(Diag)", SearchConfig::collie(0).with_budget(budget)),
    ];

    let mut all_series = Vec::new();
    let mut summary_rows = Vec::new();
    for (label, config) in &configs {
        let outcomes = run_seeded_campaigns(subsystem, config, &[11]);
        let outcome = &outcomes[0];
        let series = TraceSeries::from_outcome(outcome);
        let anomalies = series.points.iter().filter(|p| p.anomaly).count();
        let high_region_anomalies = series
            .points
            .iter()
            .filter(|p| p.anomaly && p.normalized_value >= 0.5)
            .count();
        let mean_value = if series.points.is_empty() {
            0.0
        } else {
            series
                .points
                .iter()
                .map(|p| p.normalized_value)
                .sum::<f64>()
                / series.points.len() as f64
        };
        summary_rows.push(vec![
            (*label).to_string(),
            format!("{:.2}", mean_value),
            anomalies.to_string(),
            high_region_anomalies.to_string(),
            outcome.experiments.to_string(),
        ]);
        all_series.push(TraceSeries {
            strategy: (*label).to_string(),
            points: series.points,
        });
    }

    println!("Figure 6: normalised Receive-WQE-cache-miss counter during the search (subsystem F, 150 min)\n");
    println!(
        "{}",
        text_table(
            &[
                "Trace",
                "Mean normalised value",
                "Anomalies found",
                "Anomalies found at counter >= 0.5",
                "Experiments"
            ],
            &summary_rows
        )
    );
    println!("JSON (full traces):\n{}", to_json(&all_series));
}
