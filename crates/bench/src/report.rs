//! Machine-readable perf reports (`BENCH_<name>.json`).
//!
//! Every bench the harness runs — the fig4/fig5/fig7 campaign grids plus
//! the targeted `eval_cache` / `workload_engine` micro-benches — reduces to
//! the same shape: a named report with one [`BenchCell`] per grid cell
//! carrying throughput, latency, and cache counters, plus the matrix-level
//! shared-cache totals. The `bench` bin writes one JSON file per report so
//! EXPERIMENTS.md and future PRs have a perf trajectory to diff against,
//! the fig bins re-emit the same schema behind `--json`, and CI's
//! `bench-smoke` job validates every emitted file with
//! [`validate_bench_report`] before uploading it as an artifact.

use collie_core::eval::{CacheTotals, EvalProfile, EvalStats, SharedUse};
use serde::{Deserialize, Serialize};

/// Cache behaviour of one cell: the evaluator-local hit/miss split (the
/// bit-identity-pinned [`EvalStats`]) and the matrix-shared interaction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchCache {
    /// Local memo-cache hits.
    pub hits: u64,
    /// Local memo-cache misses (each one asked the shared cache or the
    /// engine).
    pub misses: u64,
    /// `hits / (hits + misses)`; 0 when the cell never evaluated.
    pub hit_rate: f64,
    /// Local misses this cell computed itself (through the shared cache
    /// when one was attached).
    pub shared_computed: u64,
    /// Local misses served by a sibling cell's (or speculation worker's)
    /// publication in the shared cache.
    pub shared_served: u64,
}

impl BenchCache {
    /// Assemble the cache block from an evaluation profile's counters.
    pub fn from_counters(stats: EvalStats, shared: SharedUse) -> BenchCache {
        let asks = stats.hits + stats.misses;
        BenchCache {
            hits: stats.hits,
            misses: stats.misses,
            hit_rate: if asks == 0 {
                0.0
            } else {
                stats.hits as f64 / asks as f64
            },
            shared_computed: shared.computed,
            shared_served: shared.served,
        }
    }
}

/// One grid cell of a bench report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchCell {
    /// Human-readable cell label (strategy / workload, e.g. `"Collie"`).
    pub label: String,
    /// The campaign seed (0 for seedless micro-benches).
    pub seed: u64,
    /// Real wall-clock the cell took, in seconds.
    pub wall_secs: f64,
    /// Evaluations the cell asked for (local hits + misses).
    pub evals: u64,
    /// `evals / wall_secs`; 0 when the wall-clock rounds to zero.
    pub throughput_evals_per_sec: f64,
    /// Mean wall-clock of one engine compute, in microseconds (cache hits
    /// and shared serves excluded — this is the model's own cost).
    pub avg_us: f64,
    /// 99th-percentile engine-compute latency, in microseconds.
    pub p99_us: u64,
    /// Cache counters for the cell.
    pub cache: BenchCache,
}

impl BenchCell {
    /// Assemble a cell from a campaign's evaluation profile and measured
    /// wall-clock.
    pub fn from_profile(
        label: &str,
        seed: u64,
        wall_secs: f64,
        profile: &EvalProfile,
    ) -> BenchCell {
        let evals = profile.stats.hits + profile.stats.misses;
        let (avg_us, p99_us) = latency_summary(&profile.compute_micros);
        BenchCell {
            label: label.to_string(),
            seed,
            wall_secs,
            evals,
            throughput_evals_per_sec: if wall_secs > 0.0 {
                evals as f64 / wall_secs
            } else {
                0.0
            },
            avg_us,
            p99_us,
            cache: BenchCache::from_counters(profile.stats, profile.shared),
        }
    }
}

/// One named bench: the unit a `BENCH_<name>.json` file holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Bench name (`fig4`, `eval_cache`, ...); names the output file.
    pub name: String,
    /// `"full"` or `"smoke"` (the CI reduced-budget mode).
    pub mode: String,
    /// One entry per grid cell, in grid order.
    pub cells: Vec<BenchCell>,
    /// Matrix-level shared-cache totals (all zero when the bench has no
    /// shared cache).
    pub totals: CacheTotals,
}

impl BenchReport {
    /// The file a report of this name is written to.
    pub fn file_name(name: &str) -> String {
        format!("BENCH_{name}.json")
    }
}

/// Mean and 99th-percentile of a latency sample, in the sample's unit.
/// The p99 is the nearest-rank percentile over the sorted sample; an empty
/// sample summarises to zeros (a cell can be all cache hits).
pub fn latency_summary(micros: &[u64]) -> (f64, u64) {
    if micros.is_empty() {
        return (0.0, 0);
    }
    let avg = micros.iter().sum::<u64>() as f64 / micros.len() as f64;
    let mut sorted = micros.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    (avg, sorted[rank.min(sorted.len() - 1)])
}

/// Schema validation for an emitted report: what CI's `bench-smoke` job
/// checks before uploading the artifact. Returns the first violation.
pub fn validate_bench_report(report: &BenchReport) -> Result<(), String> {
    if report.name.is_empty() {
        return Err("report name is empty".to_string());
    }
    if !matches!(report.mode.as_str(), "full" | "smoke") {
        return Err(format!("unknown mode {:?}", report.mode));
    }
    if report.cells.is_empty() {
        return Err(format!("report {:?} has no cells", report.name));
    }
    for (index, cell) in report.cells.iter().enumerate() {
        let at = format!("{}[{index}] ({:?})", report.name, cell.label);
        if cell.label.is_empty() {
            return Err(format!("{at}: empty label"));
        }
        if !cell.wall_secs.is_finite() || cell.wall_secs < 0.0 {
            return Err(format!("{at}: bad wall_secs {}", cell.wall_secs));
        }
        if !cell.throughput_evals_per_sec.is_finite() || cell.throughput_evals_per_sec < 0.0 {
            return Err(format!(
                "{at}: bad throughput {}",
                cell.throughput_evals_per_sec
            ));
        }
        if !cell.avg_us.is_finite() || cell.avg_us < 0.0 {
            return Err(format!("{at}: bad avg_us {}", cell.avg_us));
        }
        if cell.cache.hits + cell.cache.misses != cell.evals {
            return Err(format!(
                "{at}: evals {} != hits {} + misses {}",
                cell.evals, cell.cache.hits, cell.cache.misses
            ));
        }
        if !(0.0..=1.0).contains(&cell.cache.hit_rate) {
            return Err(format!(
                "{at}: hit_rate {} not in [0,1]",
                cell.cache.hit_rate
            ));
        }
        if cell.cache.shared_computed + cell.cache.shared_served > cell.cache.misses {
            return Err(format!(
                "{at}: shared counters {}+{} exceed misses {}",
                cell.cache.shared_computed, cell.cache.shared_served, cell.cache.misses
            ));
        }
    }
    // The matrix cache only ever computes what some cell's miss asked for.
    let asked: u64 = report
        .cells
        .iter()
        .map(|c| c.cache.shared_computed + c.cache.shared_served)
        .sum();
    if report.totals.computed + report.totals.served < asked {
        return Err(format!(
            "totals {:?} cannot cover the {asked} shared asks",
            report.totals
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> BenchCell {
        BenchCell::from_profile(
            "Collie",
            11,
            2.0,
            &EvalProfile {
                stats: EvalStats {
                    hits: 30,
                    misses: 10,
                },
                shared: SharedUse {
                    computed: 7,
                    served: 3,
                },
                compute_micros: vec![10, 20, 30, 40],
                incremental: Default::default(),
            },
        )
    }

    #[test]
    fn cell_derives_throughput_and_hit_rate_from_the_profile() {
        let cell = sample_cell();
        assert_eq!(cell.evals, 40);
        assert!((cell.throughput_evals_per_sec - 20.0).abs() < 1e-12);
        assert!((cell.cache.hit_rate - 0.75).abs() < 1e-12);
        assert!((cell.avg_us - 25.0).abs() < 1e-12);
        assert_eq!(cell.p99_us, 40);
        assert_eq!(cell.cache.shared_computed, 7);
        assert_eq!(cell.cache.shared_served, 3);
    }

    #[test]
    fn latency_summary_handles_edges() {
        assert_eq!(latency_summary(&[]), (0.0, 0));
        assert_eq!(latency_summary(&[5]), (5.0, 5));
        // Nearest-rank p99 over 100 samples is the 99th value (0-indexed 98).
        let ramp: Vec<u64> = (1..=100).collect();
        assert_eq!(latency_summary(&ramp).1, 99);
        let (avg, p99) = latency_summary(&[3, 1, 2]);
        assert!((avg - 2.0).abs() < 1e-12);
        assert_eq!(p99, 3);
    }

    #[test]
    fn validation_accepts_a_consistent_report_and_names_the_violation() {
        let report = BenchReport {
            name: "fig4".to_string(),
            mode: "smoke".to_string(),
            cells: vec![sample_cell()],
            totals: CacheTotals {
                computed: 7,
                served: 3,
                evicted: 0,
            },
        };
        assert_eq!(validate_bench_report(&report), Ok(()));

        let mut bad = report.clone();
        bad.cells[0].evals = 41;
        let err = validate_bench_report(&bad).unwrap_err();
        assert!(err.contains("evals 41"), "{err}");

        let mut bad = report.clone();
        bad.mode = "quick".to_string();
        assert!(validate_bench_report(&bad).is_err());

        let mut bad = report.clone();
        bad.cells.clear();
        assert!(validate_bench_report(&bad).is_err());

        let mut bad = report.clone();
        bad.cells[0].cache.shared_computed = 20;
        let err = validate_bench_report(&bad).unwrap_err();
        assert!(err.contains("exceed misses"), "{err}");

        let mut bad = report;
        bad.totals = CacheTotals::default();
        let err = validate_bench_report(&bad).unwrap_err();
        assert!(err.contains("shared asks"), "{err}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            name: "eval_cache".to_string(),
            mode: "full".to_string(),
            cells: vec![sample_cell()],
            totals: CacheTotals {
                computed: 9,
                served: 1,
                evicted: 0,
            },
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(validate_bench_report(&back), Ok(()));
        assert_eq!(back, report);
        assert_eq!(
            BenchReport::file_name("eval_cache"),
            "BENCH_eval_cache.json"
        );
    }
}
