//! Shared harness code for the evaluation binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it against the simulated subsystems, and a
//! Criterion bench in `benches/` that measures the cost of the underlying
//! operation. The binaries print aligned text tables (the same rows the
//! paper reports) followed by a JSON block so EXPERIMENTS.md and plotting
//! scripts can consume the numbers directly.

use collie_core::engine::WorkloadEngine;
use collie_core::search::{run_search, SearchConfig, SearchOutcome};
use collie_core::space::SearchSpace;
use collie_rnic::subsystems::SubsystemId;

/// Default seeds used when repeating a campaign for mean/std error bars.
/// (The paper repeats each search and reports the standard deviation; three
/// seeds keep the harness runtime reasonable while still producing error
/// bars.)
pub const DEFAULT_SEEDS: [u64; 3] = [11, 23, 47];

/// Run the same campaign configuration once per seed on a fresh copy of the
/// subsystem, in parallel.
pub fn run_seeded_campaigns(
    subsystem: SubsystemId,
    config: &SearchConfig,
    seeds: &[u64],
) -> Vec<SearchOutcome> {
    let mut outcomes: Vec<Option<SearchOutcome>> = Vec::new();
    outcomes.resize_with(seeds.len(), || None);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (index, &seed) in seeds.iter().enumerate() {
            let config = SearchConfig {
                seed,
                ..config.clone()
            };
            handles.push((
                index,
                scope.spawn(move |_| {
                    let mut engine = WorkloadEngine::for_catalog(subsystem);
                    let space = SearchSpace::for_host(&subsystem.host());
                    run_search(&mut engine, &space, &config)
                }),
            ));
        }
        for (index, handle) in handles {
            outcomes[index] = Some(handle.join().expect("campaign thread panicked"));
        }
    })
    .expect("campaign scope");
    outcomes
        .into_iter()
        .map(|o| o.expect("campaign ran"))
        .collect()
}

/// Render rows of `(label, cells)` as an aligned text table.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Format an optional minute count.
pub fn fmt_minutes(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "not found".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_sim::time::SimDuration;

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "222".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn seeded_campaigns_run_in_parallel_and_are_independent() {
        let config = SearchConfig::random(0).with_budget(SimDuration::from_secs(900));
        let outcomes = run_seeded_campaigns(SubsystemId::F, &config, &[1, 2]);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.experiments > 0));
    }

    #[test]
    fn fmt_minutes_handles_missing() {
        assert_eq!(fmt_minutes(Some(12.34)), "12.3");
        assert_eq!(fmt_minutes(None), "not found");
    }
}
