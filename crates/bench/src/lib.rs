//! Shared harness code for the evaluation binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it against the simulated subsystems, and a
//! Criterion bench in `benches/` that measures the cost of the underlying
//! operation. The binaries print aligned text tables (the same rows the
//! paper reports) followed by a JSON block so EXPERIMENTS.md and plotting
//! scripts can consume the numbers directly.
//!
//! Campaigns are embarrassingly parallel — each one owns a fresh copy of
//! its subsystem — so the harness fans the full (strategy × subsystem ×
//! seed) grid out across a bounded scoped-thread pool
//! ([`run_campaign_matrix`]) instead of sweeping it serially.
#![forbid(unsafe_code)]

pub mod report;

pub use report::{latency_summary, validate_bench_report, BenchCache, BenchCell, BenchReport};

use collie_core::engine::WorkloadEngine;
use collie_core::eval::{CacheTotals, EvalContext, EvalStats, SharedUse};
use collie_core::fabric::{run_fabric_search_in_context, FabricEngine, FabricOutcome};
use collie_core::remedy::{
    DiscoveredTrigger, QualificationRecord, Qualifier, RegressionCatalog, RegressionFlag,
};
use collie_core::search::{run_search_in_context, SearchConfig, SearchOutcome};
use collie_core::space::{FabricSpace, SearchSpace};
use collie_rnic::subsystem::IncrementalUse;
use collie_rnic::subsystems::SubsystemId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default seeds used when repeating a campaign for mean/std error bars.
/// (The paper repeats each search and reports the standard deviation; three
/// seeds keep the harness runtime reasonable while still producing error
/// bars.)
pub const DEFAULT_SEEDS: [u64; 3] = [11, 23, 47];

/// One cell of a campaign matrix: a search configuration (strategy, signal,
/// MFS toggle, seed, budget) pointed at one subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The subsystem the campaign runs against (a fresh copy per cell).
    pub subsystem: SubsystemId,
    /// The full search configuration, seed included.
    pub config: SearchConfig,
}

impl CampaignSpec {
    /// A cell running `config` with `seed` on `subsystem`.
    pub fn seeded(subsystem: SubsystemId, config: &SearchConfig, seed: u64) -> CampaignSpec {
        CampaignSpec {
            subsystem,
            config: SearchConfig {
                seed,
                ..config.clone()
            },
        }
    }
}

/// The worker-pool width used when the caller does not pick one: the
/// `COLLIE_WORKERS` environment variable when set (clamped to at least 1),
/// otherwise the machine's parallelism run through [`budgeted_workers`] so
/// the matrix pool and any per-campaign speculation pools share one global
/// budget instead of multiplying against each other.
pub fn default_workers() -> usize {
    match collie_core::env::workers() {
        Some(workers) => workers,
        None => {
            let available = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            budgeted_workers(available, SearchConfig::default_speculation())
        }
    }
}

/// One global worker budget for the two nested thread pools: the matrix
/// fans cells out across campaign threads, and with `COLLIE_SPECULATION`
/// set each campaign additionally spawns `lookahead` speculation workers —
/// so an unbudgeted matrix on a 16-core host with lookahead 4 would run
/// 16 × (1 + 4) = 80 threads. Divide the machine by each cell's thread
/// footprint (`1 + lookahead`) so total threads stay near `available`;
/// without speculation this is the historical `clamp(2, 16)` width.
/// `COLLIE_WORKERS` bypasses the budget entirely (the operator knows
/// better).
pub fn budgeted_workers(available: usize, speculation: Option<usize>) -> usize {
    match speculation {
        Some(lookahead) => (available / (1 + lookahead.max(1))).clamp(1, 16),
        None => available.clamp(2, 16),
    }
}

/// Map `f` over `items` on a bounded pool of scoped worker threads,
/// preserving input order in the results.
///
/// Workers pull the next index from a shared atomic cursor, so cheap items
/// do not wait on expensive ones (campaign lengths vary by strategy). A
/// panic in `f` propagates to the caller.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = workers.max(1).min(items.len().max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(item);
                *results[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    })
    .expect("worker pool panicked");
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Default capacity of the matrix-scoped shared cache: generous enough
/// that the standard grids never evict (a full fig4 grid computes a few
/// thousand distinct points), small enough that a fleet-size matrix cannot
/// grow the cache without bound.
pub const DEFAULT_MATRIX_CACHE_CAPACITY: usize = 65_536;

/// How a campaign matrix runs: pool width, shared-cache policy, and the
/// optional verification phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixOptions {
    /// Worker-pool width (clamped like [`parallel_map`]).
    pub workers: usize,
    /// Whether cells share one matrix-scoped [`EvalContext`] (per-subsystem
    /// caches, see [`EvalContext::workload_cache`]). Sharing never changes
    /// outcomes or [`EvalStats`] — commits go through each cell's local
    /// cache — so it defaults to on.
    pub share_cache: bool,
    /// Capacity of each shared per-subsystem cache; `None` is unbounded.
    pub cache_capacity: Option<usize>,
    /// Append a qualification phase to the matrix report: every discovery
    /// is handed to a [`Qualifier`] that verifies its mitigations one at a
    /// time on fresh engine forks. Off by default — the phase runs strictly
    /// after the campaign cells and never touches their engines, so cell
    /// outcomes (and the golden-trace fixtures) are byte-identical either
    /// way.
    pub qualify: bool,
    /// A previously-saved [`RegressionCatalog`] the qualification phase
    /// consults: discoveries it already records as cleared are skipped
    /// (counted, not re-reported), and every cleared record is replayed to
    /// flag regressions. Ignored unless `qualify` is set.
    pub regression_catalog: Option<RegressionCatalog>,
}

impl MatrixOptions {
    /// Sharing on, default capacity bound, qualification off.
    pub fn new(workers: usize) -> MatrixOptions {
        MatrixOptions {
            workers,
            share_cache: true,
            cache_capacity: Some(DEFAULT_MATRIX_CACHE_CAPACITY),
            qualify: false,
            regression_catalog: None,
        }
    }

    /// Disable cross-cell sharing (the per-cell baseline the sharing proof
    /// test compares against).
    pub fn without_shared_cache(mut self) -> MatrixOptions {
        self.share_cache = false;
        self
    }

    /// Override the shared-cache capacity (`None` removes the bound).
    pub fn with_cache_capacity(mut self, capacity: Option<usize>) -> MatrixOptions {
        self.cache_capacity = capacity;
        self
    }

    /// Append the qualification phase to the matrix report.
    pub fn with_qualification(mut self) -> MatrixOptions {
        self.qualify = true;
        self
    }

    /// Consult (and regression-check) a previously-saved catalog during the
    /// qualification phase. Implies [`MatrixOptions::with_qualification`].
    pub fn with_regression_catalog(mut self, catalog: RegressionCatalog) -> MatrixOptions {
        self.qualify = true;
        self.regression_catalog = Some(catalog);
        self
    }
}

/// One finished matrix cell: the campaign outcome plus everything the perf
/// harness reports about how it ran.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell<O> {
    /// The campaign outcome (independent of cache mode and pool width).
    pub outcome: O,
    /// Local evaluation-cache hit/miss counters (bit-identical in every
    /// cache mode).
    pub stats: EvalStats,
    /// Shared-cache interaction: misses this cell computed itself vs.
    /// misses served by a sibling's publication (all zero when sharing is
    /// off).
    pub shared: SharedUse,
    /// Real wall-clock the cell took, in seconds.
    pub wall_secs: f64,
    /// One wall-clock latency (µs) per engine compute on the cell's commit
    /// thread.
    pub compute_micros: Vec<u64>,
    /// Incremental stage-reuse counters of the cell's engine (all zero
    /// when incremental evaluation is off).
    pub incremental: IncrementalUse,
}

/// A finished campaign matrix: the cells in matrix order plus the shared
/// cache's matrix-level totals and, when requested, the verification phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport<O> {
    /// One entry per input cell, in input order.
    pub cells: Vec<MatrixCell<O>>,
    /// Matrix-level shared-cache totals (zero when sharing was off).
    pub cache: CacheTotals,
    /// The qualification phase (`None` unless [`MatrixOptions::qualify`]
    /// was set).
    pub qualification: Option<QualificationPhase>,
}

/// The verification phase of a matrix run: every distinct discovery
/// qualified through the remediation pipeline, plus the regression sweep of
/// the pre-loaded catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct QualificationPhase {
    /// One record per distinct qualified discovery (dedup by
    /// [`DiscoveredTrigger::identity`] across all cells).
    pub records: Vec<QualificationRecord>,
    /// Discoveries skipped because the pre-loaded catalog already records
    /// their identity as cleared under a mitigated fixture.
    pub skipped_known_cleared: usize,
    /// Discoveries that were not anomalous on a fresh two-host engine
    /// (fabric-only effects have nothing to remediate at the subsystem
    /// level).
    pub not_reproduced: usize,
    /// Previously-cleared catalog records that are anomalous again under
    /// their recorded mitigations.
    pub regressions: Vec<RegressionFlag>,
}

/// Qualify the deduped discoveries of a finished matrix (see
/// [`MatrixOptions::qualify`]). Runs strictly after the campaign cells, on
/// fresh engines, so it can never perturb cell outcomes.
fn qualification_phase(
    specs: &[CampaignSpec],
    triggers_per_cell: Vec<Vec<DiscoveredTrigger>>,
    options: &MatrixOptions,
) -> QualificationPhase {
    let catalog = options.regression_catalog.as_ref();
    let mut seen = std::collections::BTreeSet::new();
    let mut skipped_known_cleared = 0usize;
    let mut work: Vec<(SubsystemId, DiscoveredTrigger)> = Vec::new();
    for (spec, triggers) in specs.iter().zip(triggers_per_cell) {
        for trigger in triggers {
            // The identity string is prefixed with the subsystem, so one
            // set dedups across subsystems too.
            let identity = trigger.identity(spec.subsystem);
            if !seen.insert(identity.clone()) {
                continue;
            }
            if catalog.is_some_and(|c| c.is_known_cleared(&identity)) {
                skipped_known_cleared += 1;
                continue;
            }
            work.push((spec.subsystem, trigger));
        }
    }
    let qualified = parallel_map(&work, options.workers, |(subsystem, trigger)| {
        let qualifier = Qualifier::for_subsystem(*subsystem);
        let engine = WorkloadEngine::for_catalog(*subsystem);
        qualifier.qualify(&engine, &trigger.point, &trigger.matched_rules)
    });
    let not_reproduced = qualified.iter().filter(|r| r.is_none()).count();
    QualificationPhase {
        records: qualified.into_iter().flatten().collect(),
        skipped_known_cleared,
        not_reproduced,
        regressions: catalog.map(|c| c.check_regressions()).unwrap_or_default(),
    }
}

fn matrix_context(options: &MatrixOptions) -> Option<EvalContext> {
    options.share_cache.then(|| match options.cache_capacity {
        Some(capacity) => EvalContext::bounded(capacity),
        None => EvalContext::new(),
    })
}

/// Run every cell of a campaign matrix with one matrix-scoped shared cache
/// (per [`MatrixOptions`]), reporting per-cell perf alongside the
/// outcomes. The cache refactor's ownership root: the [`EvalContext`] is
/// created here, once, and every cell's evaluator reads through it while
/// committing via its own local cache — outcomes and stats are therefore
/// byte-identical to [`run_campaign_matrix`] with sharing off.
pub fn run_campaign_matrix_report(
    specs: &[CampaignSpec],
    options: &MatrixOptions,
) -> MatrixReport<SearchOutcome> {
    let context = matrix_context(options);
    let cells = parallel_map(specs, options.workers, |cell| {
        let mut engine = WorkloadEngine::for_catalog(cell.subsystem);
        let space = SearchSpace::for_host(&cell.subsystem.host());
        let shared = context
            .as_ref()
            .map(|ctx| ctx.workload_cache(cell.subsystem));
        let started = Instant::now();
        let (outcome, profile) = run_search_in_context(&mut engine, &space, &cell.config, shared);
        MatrixCell {
            outcome,
            stats: profile.stats,
            shared: profile.shared,
            wall_secs: started.elapsed().as_secs_f64(),
            compute_micros: profile.compute_micros,
            incremental: profile.incremental,
        }
    });
    let qualification = options.qualify.then(|| {
        let triggers = cells
            .iter()
            .map(|cell| cell.outcome.discovered_triggers())
            .collect();
        qualification_phase(specs, triggers, options)
    });
    MatrixReport {
        cells,
        cache: context.map(|ctx| ctx.totals()).unwrap_or_default(),
        qualification,
    }
}

/// The fabric counterpart of [`run_campaign_matrix_report`]: same
/// ownership shape over [`EvalContext::fabric_cache`]. The qualification
/// phase (when requested) verifies each discovery's *culprit workload*
/// against the two-host subsystem — see
/// [`FabricOutcome::discovered_triggers`].
pub fn run_fabric_campaign_matrix_report(
    specs: &[CampaignSpec],
    options: &MatrixOptions,
) -> MatrixReport<FabricOutcome> {
    let context = matrix_context(options);
    let cells = parallel_map(specs, options.workers, |cell| {
        let mut engine = FabricEngine::for_catalog(cell.subsystem);
        let space = FabricSpace::for_host(&cell.subsystem.host());
        let shared = context.as_ref().map(|ctx| ctx.fabric_cache(cell.subsystem));
        let started = Instant::now();
        let (outcome, profile) =
            run_fabric_search_in_context(&mut engine, &space, &cell.config, shared);
        MatrixCell {
            outcome,
            stats: profile.stats,
            shared: profile.shared,
            wall_secs: started.elapsed().as_secs_f64(),
            compute_micros: profile.compute_micros,
            incremental: profile.incremental,
        }
    });
    let qualification = options.qualify.then(|| {
        let triggers = cells
            .iter()
            .map(|cell| cell.outcome.discovered_triggers())
            .collect();
        qualification_phase(specs, triggers, options)
    });
    MatrixReport {
        cells,
        cache: context.map(|ctx| ctx.totals()).unwrap_or_default(),
        qualification,
    }
}

/// Run every cell of a campaign matrix on a bounded worker pool, returning
/// `(outcome, eval-cache stats)` per cell in matrix order. Cells share the
/// default matrix-scoped cache (see [`MatrixOptions::new`]); the stats and
/// outcomes are bit-identical either way.
pub fn run_campaign_matrix(
    cells: &[CampaignSpec],
    workers: usize,
) -> Vec<(SearchOutcome, EvalStats)> {
    run_campaign_matrix_report(cells, &MatrixOptions::new(workers))
        .cells
        .into_iter()
        .map(|cell| (cell.outcome, cell.stats))
        .collect()
}

/// Run every cell of a *fabric* campaign matrix on a bounded worker pool,
/// returning `(outcome, eval-cache stats)` per cell in matrix order. A
/// fabric cell is an ordinary [`CampaignSpec`] — only the runner differs:
/// the cell's subsystem host is scaled out into the homogeneous fleet and
/// the configuration drives the fabric search.
pub fn run_fabric_campaign_matrix(
    cells: &[CampaignSpec],
    workers: usize,
) -> Vec<(FabricOutcome, EvalStats)> {
    run_fabric_campaign_matrix_report(cells, &MatrixOptions::new(workers))
        .cells
        .into_iter()
        .map(|cell| (cell.outcome, cell.stats))
        .collect()
}

/// Assemble the machine-readable [`BenchReport`] for a finished matrix:
/// one [`BenchCell`] per grid cell, labelled from the cell's configuration,
/// plus the matrix cache totals. The schema every `BENCH_<name>.json` file
/// and every fig bin's `--json` block share.
pub fn bench_report<O>(
    name: &str,
    mode: &str,
    cells: &[CampaignSpec],
    report: &MatrixReport<O>,
) -> BenchReport {
    BenchReport {
        name: name.to_string(),
        mode: mode.to_string(),
        cells: cells
            .iter()
            .zip(&report.cells)
            .map(|(spec, cell)| {
                BenchCell::from_profile(
                    &spec.config.label(),
                    spec.config.seed,
                    cell.wall_secs,
                    &collie_core::eval::EvalProfile {
                        stats: cell.stats,
                        shared: cell.shared,
                        compute_micros: cell.compute_micros.clone(),
                        incremental: cell.incremental,
                    },
                )
            })
            .collect(),
        totals: report.cache,
    }
}

/// Run the same campaign configuration once per seed on a fresh copy of the
/// subsystem, in parallel (a one-configuration row of the campaign matrix).
pub fn run_seeded_campaigns(
    subsystem: SubsystemId,
    config: &SearchConfig,
    seeds: &[u64],
) -> Vec<SearchOutcome> {
    let cells: Vec<CampaignSpec> = seeds
        .iter()
        .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        .collect();
    run_campaign_matrix(&cells, default_workers())
        .into_iter()
        .map(|(outcome, _)| outcome)
        .collect()
}

/// Render rows of `(label, cells)` as an aligned text table. Rows may carry
/// more cells than the header; widths are sized to the widest row.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = rows
        .iter()
        .map(|row| row.len())
        .max()
        .unwrap_or(0)
        .max(header.len());
    let mut widths: Vec<usize> = vec![0; columns];
    for (i, h) in header.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Format an optional minute count.
pub fn fmt_minutes(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "not found".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_sim::time::SimDuration;

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "222".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn text_table_sizes_widths_to_the_widest_row() {
        // Regression: widths used to be computed only for header columns,
        // so rows with more cells than the header rendered those cells with
        // width 0 and broke alignment.
        let table = text_table(
            &["name"],
            &[
                vec!["a".to_string(), "x".to_string(), "yy".to_string()],
                vec!["bb".to_string(), "wide-cell".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        // Every cell is padded to its column width, so both data rows start
        // their second column at the same offset even though the header has
        // a single cell.
        let col2_row1 = lines[2].find('x').expect("row 1 second cell");
        let col2_row2 = lines[3].find("wide-cell").expect("row 2 second cell");
        assert_eq!(col2_row1, col2_row2, "{table}");
        // The rule spans all three columns, not just the header's one:
        // widths (4 + 9 + 2) plus 2 spaces of padding per column.
        assert_eq!(lines[1].len(), 4 + 9 + 2 + 2 * 3);
    }

    #[test]
    fn parallel_map_preserves_order_under_a_small_pool() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = parallel_map(&items, 3, |&n| n * 2);
        assert_eq!(doubled, items.iter().map(|n| n * 2).collect::<Vec<_>>());
        // Degenerate widths are clamped, not panicked on.
        assert_eq!(parallel_map(&items[..1], 0, |&n| n + 1), vec![1]);
        assert!(parallel_map(&[] as &[u64], 4, |&n| n).is_empty());
    }

    #[test]
    fn seeded_campaigns_run_in_parallel_and_are_independent() {
        let config = SearchConfig::random(0).with_budget(SimDuration::from_secs(900));
        let outcomes = run_seeded_campaigns(SubsystemId::F, &config, &[1, 2]);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.experiments > 0));
    }

    #[test]
    fn campaign_matrix_matches_per_cell_runs() {
        // Two strategies × two seeds through the matrix equal the same four
        // campaigns run individually: the pool changes scheduling, never
        // results.
        let budget = SimDuration::from_secs(900);
        let configs = [
            SearchConfig::random(0).with_budget(budget),
            SearchConfig::collie(0).with_budget(budget),
        ];
        let mut cells = Vec::new();
        for config in &configs {
            for &seed in &[5u64, 6] {
                cells.push(CampaignSpec::seeded(SubsystemId::F, config, seed));
            }
        }
        let matrix = run_campaign_matrix(&cells, 2);
        assert_eq!(matrix.len(), 4);
        for (cell, (outcome, _)) in cells.iter().zip(&matrix) {
            let mut engine = WorkloadEngine::for_catalog(cell.subsystem);
            let space = SearchSpace::for_host(&cell.subsystem.host());
            let solo = collie_core::search::run_search(&mut engine, &space, &cell.config);
            assert_eq!(&solo, outcome, "{}", cell.config.label());
        }
    }

    #[test]
    fn fmt_minutes_handles_missing() {
        assert_eq!(fmt_minutes(Some(12.34)), "12.3");
        assert_eq!(fmt_minutes(None), "not found");
    }

    #[test]
    fn worker_budget_accounts_for_speculation_oversubscription() {
        // Serial matrices keep the historical width: the machine's
        // parallelism clamped to [2, 16].
        for (available, expected) in [(1, 2), (2, 2), (8, 8), (16, 16), (64, 16)] {
            assert_eq!(budgeted_workers(available, None), expected, "{available}");
        }
        // With COLLIE_SPECULATION each cell runs 1 + lookahead threads, so
        // the matrix width divides the machine by that footprint instead of
        // multiplying against it: 16 cores at lookahead 4 budget 3 cells
        // (15 threads), not 16 cells (80 threads).
        for (available, lookahead, expected) in [
            (16, 4, 3),
            (16, 1, 8),
            (8, 8, 1),
            (2, 4, 1),   // never an empty pool
            (64, 0, 16), // degenerate lookahead counts as 1; ceiling holds
            (96, 1, 16), // the historical ceiling still applies
        ] {
            assert_eq!(
                budgeted_workers(available, Some(lookahead)),
                expected,
                "available={available} lookahead={lookahead}"
            );
        }
    }

    #[test]
    fn matrix_report_shares_the_cache_without_changing_outcomes() {
        // The tentpole contract at the harness level: the same two-cell
        // grid with sharing on and off produces identical outcomes and
        // local stats; only the shared counters differ. (The cross-cell
        // sharing *gain* is proven in tests/eval_cache.rs.)
        // Execution mode pinned: memoization on (sharing rides on the local
        // cache; COLLIE_MEMOIZE=0 leg), speculation off (lookahead workers
        // would give even the no-sharing baseline a campaign-private shared
        // cache; COLLIE_SPECULATION=4 leg).
        let budget = SimDuration::from_secs(900);
        let config = SearchConfig::random(0)
            .with_budget(budget)
            .with_memoization(true)
            .with_speculation(None);
        let cells = [
            CampaignSpec::seeded(SubsystemId::F, &config, 5),
            CampaignSpec::seeded(SubsystemId::F, &config, 5),
        ];
        let shared = run_campaign_matrix_report(&cells, &MatrixOptions::new(2));
        let solo =
            run_campaign_matrix_report(&cells, &MatrixOptions::new(2).without_shared_cache());
        assert_eq!(solo.cache, collie_core::eval::CacheTotals::default());
        for (a, b) in shared.cells.iter().zip(&solo.cells) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.stats, b.stats);
            assert_eq!(b.shared, SharedUse::default());
            assert!(a.wall_secs >= 0.0 && b.wall_secs >= 0.0);
        }
        // Identical seeds ask for identical points: the shared totals cover
        // every miss. (>= rather than ==: under COLLIE_SPECULATION the
        // lookahead workers also publish into the same matrix cache.)
        let asks: u64 = shared
            .cells
            .iter()
            .map(|c| c.shared.computed + c.shared.served)
            .sum();
        assert!(shared.cache.computed + shared.cache.served >= asks);
        assert!(shared.cache.served > 0, "twin cells must share computes");
    }

    #[test]
    fn qualification_phase_rides_along_without_changing_cells() {
        // The mitigation-loop contract at the harness level: turning the
        // verification phase on must not move a single byte of the campaign
        // cells (it runs after them, on fresh engines), and a catalog built
        // from one run lets the next run skip everything already cleared.
        let config = SearchConfig::collie(0).with_budget(SimDuration::from_secs(2 * 3600));
        let cells = [CampaignSpec::seeded(SubsystemId::F, &config, 11)];
        let plain = run_campaign_matrix_report(&cells, &MatrixOptions::new(2));
        assert_eq!(plain.qualification, None);

        let qualified =
            run_campaign_matrix_report(&cells, &MatrixOptions::new(2).with_qualification());
        for (a, b) in plain.cells.iter().zip(&qualified.cells) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.stats, b.stats);
        }
        let phase = qualified.qualification.expect("phase requested");
        // Several discoveries may share one anomaly identity; the phase
        // qualifies each identity once.
        let distinct: std::collections::BTreeSet<String> = plain.cells[0]
            .outcome
            .discovered_triggers()
            .iter()
            .map(|t| t.identity(SubsystemId::F))
            .collect();
        assert!(!distinct.is_empty(), "the 2h collie campaign must discover");
        assert_eq!(
            phase.records.len() + phase.not_reproduced,
            distinct.len(),
            "{phase:?}"
        );
        assert_eq!(phase.skipped_known_cleared, 0);
        assert!(phase.regressions.is_empty());

        // Feed the run's records back as the persistent catalog: every
        // cleared record is now skipped instead of re-reported, nothing
        // regresses, and the uncleared ones are honestly re-qualified.
        let mut catalog = RegressionCatalog::new();
        let cleared = phase.records.iter().filter(|r| r.cleared()).count();
        for record in &phase.records {
            catalog.upsert(record.clone());
        }
        let rerun = run_campaign_matrix_report(
            &cells,
            &MatrixOptions::new(2).with_regression_catalog(catalog),
        );
        let rerun_phase = rerun.qualification.expect("phase implied by catalog");
        assert_eq!(rerun_phase.skipped_known_cleared, cleared);
        assert_eq!(
            rerun_phase.records.len() + rerun_phase.not_reproduced + cleared,
            distinct.len()
        );
        assert!(rerun_phase.records.iter().all(|r| !r.cleared()));
        assert!(rerun_phase.regressions.is_empty(), "{rerun_phase:?}");
    }

    #[test]
    fn workers_override_parses_and_clamps() {
        // CI and operators pin the matrix pool with COLLIE_WORKERS; the
        // parser grammar itself is pinned in `collie_core::env::tests`
        // (the registry is the single source of truth). Whatever the
        // machine (or an inherited COLLIE_WORKERS) looks like, the pool
        // is never empty.
        assert_eq!(collie_core::env::parse_workers(Some("0")), Some(1));
        assert!(default_workers() >= 1);
    }

    #[test]
    fn fabric_matrix_matches_per_cell_runs() {
        // Fabric campaigns through the pool equal the same campaigns run
        // individually: scheduling never changes results. All three fig7
        // strategies — the BO cell runs the real generic surrogate driver,
        // not a relabelled random baseline.
        let budget = SimDuration::from_secs(1800);
        let configs = [
            SearchConfig::random(0).with_budget(budget),
            SearchConfig::bayesian(0).with_budget(budget),
            SearchConfig::collie(0).with_budget(budget),
        ];
        let cells: Vec<CampaignSpec> = configs
            .iter()
            .map(|config| CampaignSpec::seeded(SubsystemId::F, config, 5))
            .collect();
        let matrix = run_fabric_campaign_matrix(&cells, 2);
        assert_eq!(matrix.len(), 3);
        for (cell, (outcome, _)) in cells.iter().zip(&matrix) {
            let mut engine = FabricEngine::for_catalog(cell.subsystem);
            let space = FabricSpace::for_host(&cell.subsystem.host());
            let solo = collie_core::fabric::run_fabric_search(&mut engine, &space, &cell.config);
            assert_eq!(&solo, outcome, "{}", cell.config.label());
            assert!(outcome.experiments > 0);
        }
        // The BO and random cells share a seed; distinct outcomes prove the
        // dispatch is not collapsing strategies.
        assert_ne!(matrix[0].0, matrix[1].0, "BO cell ran the random loop");
    }
}
