//! Shared harness code for the evaluation binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it against the simulated subsystems, and a
//! Criterion bench in `benches/` that measures the cost of the underlying
//! operation. The binaries print aligned text tables (the same rows the
//! paper reports) followed by a JSON block so EXPERIMENTS.md and plotting
//! scripts can consume the numbers directly.
//!
//! Campaigns are embarrassingly parallel — each one owns a fresh copy of
//! its subsystem — so the harness fans the full (strategy × subsystem ×
//! seed) grid out across a bounded scoped-thread pool
//! ([`run_campaign_matrix`]) instead of sweeping it serially.

use collie_core::engine::WorkloadEngine;
use collie_core::eval::EvalStats;
use collie_core::fabric::{run_fabric_search_with_stats, FabricEngine, FabricOutcome};
use collie_core::search::{run_search_with_stats, SearchConfig, SearchOutcome};
use collie_core::space::{FabricSpace, SearchSpace};
use collie_rnic::subsystems::SubsystemId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default seeds used when repeating a campaign for mean/std error bars.
/// (The paper repeats each search and reports the standard deviation; three
/// seeds keep the harness runtime reasonable while still producing error
/// bars.)
pub const DEFAULT_SEEDS: [u64; 3] = [11, 23, 47];

/// One cell of a campaign matrix: a search configuration (strategy, signal,
/// MFS toggle, seed, budget) pointed at one subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// The subsystem the campaign runs against (a fresh copy per cell).
    pub subsystem: SubsystemId,
    /// The full search configuration, seed included.
    pub config: SearchConfig,
}

impl CampaignSpec {
    /// A cell running `config` with `seed` on `subsystem`.
    pub fn seeded(subsystem: SubsystemId, config: &SearchConfig, seed: u64) -> CampaignSpec {
        CampaignSpec {
            subsystem,
            config: SearchConfig {
                seed,
                ..config.clone()
            },
        }
    }
}

/// The worker-pool width used when the caller does not pick one: the
/// `COLLIE_WORKERS` environment variable when set (clamped to at least 1),
/// otherwise the machine's parallelism, bounded so a huge host does not
/// spawn more campaign threads than the matrix can feed.
///
/// The override matters once campaigns speculate internally
/// (`COLLIE_SPECULATION`): each campaign then spawns its own lookahead
/// workers, and an operator may want fewer matrix threads so the two pools
/// do not oversubscribe the machine.
pub fn default_workers() -> usize {
    match parse_workers(std::env::var("COLLIE_WORKERS").ok().as_deref()) {
        Some(workers) => workers,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 16),
    }
}

/// `COLLIE_WORKERS` parser, separated from the env read so it can be
/// tested without mutating process-global state under a parallel test
/// runner. Positive integers are honoured as-is; `0` clamps to 1 (a pool
/// cannot be empty); anything unparsable falls back to the automatic
/// width.
fn parse_workers(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Map `f` over `items` on a bounded pool of scoped worker threads,
/// preserving input order in the results.
///
/// Workers pull the next index from a shared atomic cursor, so cheap items
/// do not wait on expensive ones (campaign lengths vary by strategy). A
/// panic in `f` propagates to the caller.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = workers.max(1).min(items.len().max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(item);
                *results[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    })
    .expect("worker pool panicked");
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Run every cell of a campaign matrix on a bounded worker pool, returning
/// `(outcome, eval-cache stats)` per cell in matrix order.
pub fn run_campaign_matrix(
    cells: &[CampaignSpec],
    workers: usize,
) -> Vec<(SearchOutcome, EvalStats)> {
    parallel_map(cells, workers, |cell| {
        let mut engine = WorkloadEngine::for_catalog(cell.subsystem);
        let space = SearchSpace::for_host(&cell.subsystem.host());
        run_search_with_stats(&mut engine, &space, &cell.config)
    })
}

/// Run every cell of a *fabric* campaign matrix on a bounded worker pool,
/// returning `(outcome, eval-cache stats)` per cell in matrix order. A
/// fabric cell is an ordinary [`CampaignSpec`] — only the runner differs:
/// the cell's subsystem host is scaled out into the homogeneous fleet and
/// the configuration drives the fabric search.
pub fn run_fabric_campaign_matrix(
    cells: &[CampaignSpec],
    workers: usize,
) -> Vec<(FabricOutcome, EvalStats)> {
    parallel_map(cells, workers, |cell| {
        let mut engine = FabricEngine::for_catalog(cell.subsystem);
        let space = FabricSpace::for_host(&cell.subsystem.host());
        run_fabric_search_with_stats(&mut engine, &space, &cell.config)
    })
}

/// Run the same campaign configuration once per seed on a fresh copy of the
/// subsystem, in parallel (a one-configuration row of the campaign matrix).
pub fn run_seeded_campaigns(
    subsystem: SubsystemId,
    config: &SearchConfig,
    seeds: &[u64],
) -> Vec<SearchOutcome> {
    let cells: Vec<CampaignSpec> = seeds
        .iter()
        .map(|&seed| CampaignSpec::seeded(subsystem, config, seed))
        .collect();
    run_campaign_matrix(&cells, default_workers())
        .into_iter()
        .map(|(outcome, _)| outcome)
        .collect()
}

/// Render rows of `(label, cells)` as an aligned text table. Rows may carry
/// more cells than the header; widths are sized to the widest row.
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = rows
        .iter()
        .map(|row| row.len())
        .max()
        .unwrap_or(0)
        .max(header.len());
    let mut widths: Vec<usize> = vec![0; columns];
    for (i, h) in header.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&render_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Format an optional minute count.
pub fn fmt_minutes(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "not found".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_sim::time::SimDuration;

    #[test]
    fn text_table_aligns_columns() {
        let table = text_table(
            &["name", "value"],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer-name".to_string(), "222".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn text_table_sizes_widths_to_the_widest_row() {
        // Regression: widths used to be computed only for header columns,
        // so rows with more cells than the header rendered those cells with
        // width 0 and broke alignment.
        let table = text_table(
            &["name"],
            &[
                vec!["a".to_string(), "x".to_string(), "yy".to_string()],
                vec!["bb".to_string(), "wide-cell".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        // Every cell is padded to its column width, so both data rows start
        // their second column at the same offset even though the header has
        // a single cell.
        let col2_row1 = lines[2].find('x').expect("row 1 second cell");
        let col2_row2 = lines[3].find("wide-cell").expect("row 2 second cell");
        assert_eq!(col2_row1, col2_row2, "{table}");
        // The rule spans all three columns, not just the header's one:
        // widths (4 + 9 + 2) plus 2 spaces of padding per column.
        assert_eq!(lines[1].len(), 4 + 9 + 2 + 2 * 3);
    }

    #[test]
    fn parallel_map_preserves_order_under_a_small_pool() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = parallel_map(&items, 3, |&n| n * 2);
        assert_eq!(doubled, items.iter().map(|n| n * 2).collect::<Vec<_>>());
        // Degenerate widths are clamped, not panicked on.
        assert_eq!(parallel_map(&items[..1], 0, |&n| n + 1), vec![1]);
        assert!(parallel_map(&[] as &[u64], 4, |&n| n).is_empty());
    }

    #[test]
    fn seeded_campaigns_run_in_parallel_and_are_independent() {
        let config = SearchConfig::random(0).with_budget(SimDuration::from_secs(900));
        let outcomes = run_seeded_campaigns(SubsystemId::F, &config, &[1, 2]);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.experiments > 0));
    }

    #[test]
    fn campaign_matrix_matches_per_cell_runs() {
        // Two strategies × two seeds through the matrix equal the same four
        // campaigns run individually: the pool changes scheduling, never
        // results.
        let budget = SimDuration::from_secs(900);
        let configs = [
            SearchConfig::random(0).with_budget(budget),
            SearchConfig::collie(0).with_budget(budget),
        ];
        let mut cells = Vec::new();
        for config in &configs {
            for &seed in &[5u64, 6] {
                cells.push(CampaignSpec::seeded(SubsystemId::F, config, seed));
            }
        }
        let matrix = run_campaign_matrix(&cells, 2);
        assert_eq!(matrix.len(), 4);
        for (cell, (outcome, _)) in cells.iter().zip(&matrix) {
            let mut engine = WorkloadEngine::for_catalog(cell.subsystem);
            let space = SearchSpace::for_host(&cell.subsystem.host());
            let solo = collie_core::search::run_search(&mut engine, &space, &cell.config);
            assert_eq!(&solo, outcome, "{}", cell.config.label());
        }
    }

    #[test]
    fn fmt_minutes_handles_missing() {
        assert_eq!(fmt_minutes(Some(12.34)), "12.3");
        assert_eq!(fmt_minutes(None), "not found");
    }

    #[test]
    fn workers_override_parses_and_clamps() {
        // CI and operators pin the matrix pool with COLLIE_WORKERS; this
        // pins the parser without touching process-global state.
        for (value, expected) in [
            (None, None),
            (Some(""), None),
            (Some("  "), None),
            (Some("not a pool"), None),
            (Some("-2"), None),
            (Some("0"), Some(1)),
            (Some("1"), Some(1)),
            (Some(" 3 "), Some(3)),
            (Some("24"), Some(24)),
        ] {
            assert_eq!(parse_workers(value), expected, "COLLIE_WORKERS={value:?}");
        }
        // Whatever the machine (or an inherited COLLIE_WORKERS) looks
        // like, the pool is never empty.
        assert!(default_workers() >= 1);
    }

    #[test]
    fn fabric_matrix_matches_per_cell_runs() {
        // Fabric campaigns through the pool equal the same campaigns run
        // individually: scheduling never changes results. All three fig7
        // strategies — the BO cell runs the real generic surrogate driver,
        // not a relabelled random baseline.
        let budget = SimDuration::from_secs(1800);
        let configs = [
            SearchConfig::random(0).with_budget(budget),
            SearchConfig::bayesian(0).with_budget(budget),
            SearchConfig::collie(0).with_budget(budget),
        ];
        let cells: Vec<CampaignSpec> = configs
            .iter()
            .map(|config| CampaignSpec::seeded(SubsystemId::F, config, 5))
            .collect();
        let matrix = run_fabric_campaign_matrix(&cells, 2);
        assert_eq!(matrix.len(), 3);
        for (cell, (outcome, _)) in cells.iter().zip(&matrix) {
            let mut engine = FabricEngine::for_catalog(cell.subsystem);
            let space = FabricSpace::for_host(&cell.subsystem.host());
            let solo = collie_core::fabric::run_fabric_search(&mut engine, &space, &cell.config);
            assert_eq!(&solo, outcome, "{}", cell.config.label());
            assert!(outcome.experiments > 0);
        }
        // The BO and random cells share a seed; distinct outcomes prove the
        // dispatch is not collapsing strategies.
        assert_ne!(matrix[0].0, matrix[1].0, "BO cell ran the random loop");
    }
}
