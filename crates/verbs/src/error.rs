//! Error types for the verbs layer.
//!
//! Real libibverbs reports failures through `errno`-style integers; we use a
//! typed enum so that tests can assert on the exact failure and so that the
//! workload engine can distinguish "this search point is invalid" from "the
//! engine has a bug".

use std::fmt;

/// Result alias used across the verbs crate.
pub type Result<T> = std::result::Result<T, VerbsError>;

/// Failures the verbs layer can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerbsError {
    /// The QP is in the wrong state for the requested operation
    /// (e.g. posting a send before the QP reached RTS).
    InvalidQpState {
        /// What was attempted.
        operation: &'static str,
        /// State the QP is actually in.
        state: &'static str,
    },
    /// The opcode is not supported on the QP's transport type
    /// (e.g. RDMA READ on a UD QP).
    UnsupportedOpcode {
        /// The rejected opcode.
        opcode: &'static str,
        /// The QP transport.
        transport: &'static str,
    },
    /// A work queue is full (send queue, receive queue, or CQ overflow).
    QueueFull {
        /// Which queue.
        queue: &'static str,
        /// Its configured capacity.
        capacity: usize,
    },
    /// A scatter/gather entry refers to memory outside any registered MR or
    /// violates the MR's access flags.
    AccessViolation {
        /// Human-readable description.
        reason: String,
    },
    /// Too many scatter/gather entries for this QP.
    TooManySges {
        /// Entries requested.
        requested: usize,
        /// QP limit.
        limit: usize,
    },
    /// MR registration failed (zero length, or the host cannot pin that
    /// much memory).
    RegistrationFailed {
        /// Human-readable description.
        reason: String,
    },
    /// The two QPs being connected are incompatible (different types) or
    /// one of them is not ready.
    ConnectionFailed {
        /// Human-readable description.
        reason: String,
    },
    /// A resource handle (QP number, MR key) does not exist.
    UnknownHandle {
        /// Which kind of handle.
        kind: &'static str,
        /// The handle value.
        handle: u64,
    },
    /// The requested attribute value is not supported by the device
    /// (e.g. an MTU the RNIC does not implement).
    InvalidAttribute {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for VerbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbsError::InvalidQpState { operation, state } => {
                write!(f, "cannot {operation}: QP is in state {state}")
            }
            VerbsError::UnsupportedOpcode { opcode, transport } => {
                write!(f, "opcode {opcode} is not supported on {transport} QPs")
            }
            VerbsError::QueueFull { queue, capacity } => {
                write!(f, "{queue} is full (capacity {capacity})")
            }
            VerbsError::AccessViolation { reason } => write!(f, "access violation: {reason}"),
            VerbsError::TooManySges { requested, limit } => {
                write!(f, "too many SG entries: {requested} > limit {limit}")
            }
            VerbsError::RegistrationFailed { reason } => {
                write!(f, "memory registration failed: {reason}")
            }
            VerbsError::ConnectionFailed { reason } => write!(f, "connection failed: {reason}"),
            VerbsError::UnknownHandle { kind, handle } => {
                write!(f, "unknown {kind} handle {handle}")
            }
            VerbsError::InvalidAttribute { reason } => write!(f, "invalid attribute: {reason}"),
        }
    }
}

impl std::error::Error for VerbsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = VerbsError::InvalidQpState {
            operation: "post_send",
            state: "INIT",
        };
        assert!(e.to_string().contains("post_send"));
        assert!(e.to_string().contains("INIT"));

        let e = VerbsError::TooManySges {
            requested: 9,
            limit: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn errors_are_comparable() {
        let a = VerbsError::QueueFull {
            queue: "send queue",
            capacity: 16,
        };
        let b = VerbsError::QueueFull {
            queue: "send queue",
            capacity: 16,
        };
        assert_eq!(a, b);
    }
}
