//! # collie-verbs
//!
//! A verbs-style RDMA programming abstraction over the simulated RDMA
//! subsystem.
//!
//! Collie's whole search space is defined in terms of the standard verbs
//! API — "the narrow waist of RDMA programming" (§4, Figure 3): memory
//! regions registered with `ibv_reg_mr`, queue pairs created with
//! `ibv_create_qp` and driven through their state machine with
//! `ibv_modify_qp`, work requests posted with `ibv_post_send` /
//! `ibv_post_recv`, and completions harvested with `ibv_poll_cq`. This
//! crate reproduces that surface in safe Rust over the behavioural RNIC
//! model, so that:
//!
//! * the workload engine in `collie-core` can set up traffic exactly the
//!   way the paper's C++ engine does (register MRs, create and connect QPs,
//!   post batched WQEs with scatter/gather lists), and
//! * example applications (an RPC library, a parameter-server-style
//!   training job) can be written against a realistic API and then measured
//!   on any Table-1 subsystem.
//!
//! The crate mirrors the libibverbs object model:
//!
//! | libibverbs                | here                                  |
//! |---------------------------|---------------------------------------|
//! | `ibv_context`             | [`device::Context`]                   |
//! | `ibv_pd`                  | [`device::ProtectionDomain`]          |
//! | `ibv_mr` / `ibv_reg_mr`   | [`mr::MemoryRegion`] / [`device::ProtectionDomain::reg_mr`] |
//! | `ibv_cq` / `ibv_create_cq`| [`cq::CompletionQueue`]               |
//! | `ibv_qp` / `ibv_create_qp`| [`qp::QueuePair`]                     |
//! | `ibv_post_send`/`recv`    | [`qp::QueuePair::post_send`] / [`qp::QueuePair::post_recv`] |
//! | `ibv_poll_cq`             | [`cq::CompletionQueue::poll`]         |
//! | out-of-band QP exchange   | [`fabric::Fabric::connect`]           |
//!
//! [`fabric::Fabric::run`] plays the role of letting the connected QPs
//! exchange traffic for a measurement window: it derives the flow-level
//! workload the posted work requests describe, evaluates it on the
//! subsystem model, delivers completions, and returns the measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cq;
pub mod device;
pub mod error;
pub mod fabric;
pub mod mr;
pub mod qp;
pub mod types;

pub use cq::CompletionQueue;
pub use device::{Context, ProtectionDomain, RdmaDevice};
pub use error::{Result, VerbsError};
pub use fabric::Fabric;
pub use mr::MemoryRegion;
pub use qp::{QpAttr, QpCaps, QpState, QueuePair};
pub use types::{
    AccessFlags, Mtu, RecvWr, SendWr, Sge, WcOpcode, WcStatus, WorkCompletion, WrOpcode,
};
