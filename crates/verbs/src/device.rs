//! Devices, contexts, and protection domains.
//!
//! [`RdmaDevice`] represents one server's RNIC port as the application sees
//! it: open it to get a [`Context`], query its attributes, allocate a
//! [`ProtectionDomain`], and register memory. The device knows which host
//! of the two-server testbed it lives in, which is how the fabric later
//! decides each flow's direction.

use crate::error::{Result, VerbsError};
use crate::mr::MemoryRegion;
use crate::types::{AccessFlags, Mtu};
use collie_host::memory::MemoryTarget;
use collie_host::topology::HostConfig;
use collie_rnic::spec::RnicSpec;
use collie_sim::units::{BitRate, ByteSize};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Device-level limits reported by `query_device`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceAttr {
    /// Maximum queue pairs the paper's search bounds itself to (20 K).
    pub max_qp: u32,
    /// Maximum memory regions the paper's search bounds itself to (200 K).
    pub max_mr: u32,
    /// Maximum scatter/gather entries per work request.
    pub max_sge: u32,
    /// Maximum completion-queue entries.
    pub max_cqe: u32,
    /// Maximum work requests per queue.
    pub max_qp_wr: u32,
}

/// Port-level attributes reported by `query_port`.
#[derive(Debug, Clone, PartialEq)]
pub struct PortAttr {
    /// Link speed.
    pub link_speed: BitRate,
    /// The path MTU currently configured on the port.
    pub active_mtu: Mtu,
}

#[derive(Debug)]
pub(crate) struct DeviceInner {
    pub(crate) host: HostConfig,
    pub(crate) spec: RnicSpec,
    pub(crate) host_index: usize,
    pub(crate) active_mtu: Mtu,
    next_qpn: AtomicU32,
}

impl DeviceInner {
    pub(crate) fn next_qp_num(&self) -> u32 {
        self.next_qpn.fetch_add(1, Ordering::Relaxed)
    }
}

/// One server's RNIC as presented to applications.
#[derive(Debug, Clone)]
pub struct RdmaDevice {
    inner: Arc<DeviceInner>,
}

impl RdmaDevice {
    /// Create a device for the RNIC of `host` (index 0 = host A, 1 = host B
    /// of the testbed).
    pub fn new(host: HostConfig, spec: RnicSpec, host_index: usize) -> Self {
        RdmaDevice {
            inner: Arc::new(DeviceInner {
                host,
                spec,
                // QP numbers are partitioned per host so that the fabric can
                // match a local QP to its remote peer unambiguously.
                next_qpn: AtomicU32::new(1 + host_index as u32 * 10_000_000),
                host_index,
                active_mtu: Mtu::Mtu1024,
            }),
        }
    }

    /// Open the device (`ibv_open_device`).
    pub fn open(&self) -> Context {
        Context {
            device: self.inner.clone(),
        }
    }

    /// Which host of the testbed this device belongs to.
    pub fn host_index(&self) -> usize {
        self.inner.host_index
    }
}

/// An opened device context (`ibv_context`).
#[derive(Debug, Clone)]
pub struct Context {
    pub(crate) device: Arc<DeviceInner>,
}

impl Context {
    /// Device limits (`ibv_query_device`). The QP and MR maxima are the
    /// bounds the paper places on its search space (§4, Dimensions 2 and 3).
    pub fn query_device(&self) -> DeviceAttr {
        DeviceAttr {
            max_qp: 20_000,
            max_mr: 200_000,
            max_sge: 16,
            max_cqe: 4 * 1024 * 1024,
            max_qp_wr: 16_384,
        }
    }

    /// Port attributes (`ibv_query_port`).
    pub fn query_port(&self) -> PortAttr {
        PortAttr {
            link_speed: self.device.spec.line_rate,
            active_mtu: self.device.active_mtu,
        }
    }

    /// The host configuration behind this context (used by the workload
    /// engine to enumerate memory targets for Dimension 1).
    pub fn host(&self) -> &HostConfig {
        &self.device.host
    }

    /// The RNIC specification behind this context.
    pub fn rnic_spec(&self) -> &RnicSpec {
        &self.device.spec
    }

    /// Which host of the testbed this context belongs to.
    pub fn host_index(&self) -> usize {
        self.device.host_index
    }

    /// Allocate a protection domain (`ibv_alloc_pd`).
    pub fn alloc_pd(&self) -> ProtectionDomain {
        ProtectionDomain {
            device: self.device.clone(),
            inner: Arc::new(Mutex::new(PdInner {
                mrs: Vec::new(),
                next_key: 1,
                pinned: ByteSize::ZERO,
            })),
        }
    }
}

#[derive(Debug)]
struct PdInner {
    mrs: Vec<MemoryRegion>,
    next_key: u32,
    pinned: ByteSize,
}

/// A protection domain (`ibv_pd`): the container MRs and QPs live in.
#[derive(Debug, Clone)]
pub struct ProtectionDomain {
    pub(crate) device: Arc<DeviceInner>,
    inner: Arc<Mutex<PdInner>>,
}

impl ProtectionDomain {
    /// Register a memory region of `length` bytes backed by `target`
    /// (`ibv_reg_mr`). Fails if the length is zero, the target does not
    /// exist on this host, or the host cannot pin that much more memory.
    pub fn reg_mr(
        &self,
        length: ByteSize,
        target: MemoryTarget,
        access: AccessFlags,
    ) -> Result<MemoryRegion> {
        if length.as_bytes() == 0 {
            return Err(VerbsError::RegistrationFailed {
                reason: "zero-length registration".to_string(),
            });
        }
        if let MemoryTarget::GpuMemory { gpu_id } = target {
            if self.device.host.gpu(gpu_id).is_none() {
                return Err(VerbsError::RegistrationFailed {
                    reason: format!("host has no GPU {gpu_id}"),
                });
            }
        }
        let mut inner = self.inner.lock();
        let limit = self.device.host.total_dram;
        if !target.is_gpu() && inner.pinned.as_bytes() + length.as_bytes() > limit.as_bytes() {
            return Err(VerbsError::RegistrationFailed {
                reason: format!(
                    "cannot pin {length}: {} already pinned of {limit}",
                    inner.pinned
                ),
            });
        }
        let lkey = inner.next_key;
        inner.next_key += 2;
        let mr = MemoryRegion {
            lkey,
            rkey: lkey + 1,
            length,
            target,
            access,
        };
        if !target.is_gpu() {
            inner.pinned += length;
        }
        inner.mrs.push(mr.clone());
        Ok(mr)
    }

    /// Deregister a memory region (`ibv_dereg_mr`).
    pub fn dereg_mr(&self, mr: &MemoryRegion) -> Result<()> {
        let mut inner = self.inner.lock();
        let before = inner.mrs.len();
        inner.mrs.retain(|m| m.lkey != mr.lkey);
        if inner.mrs.len() == before {
            return Err(VerbsError::UnknownHandle {
                kind: "memory region",
                handle: mr.lkey as u64,
            });
        }
        if !mr.target.is_gpu() {
            inner.pinned = inner.pinned.saturating_sub(mr.length);
        }
        Ok(())
    }

    /// Look up a registered MR by local key.
    pub fn lookup(&self, lkey: u32) -> Option<MemoryRegion> {
        self.inner
            .lock()
            .mrs
            .iter()
            .find(|m| m.lkey == lkey)
            .cloned()
    }

    /// Number of registered MRs.
    pub fn mr_count(&self) -> usize {
        self.inner.lock().mrs.len()
    }

    /// Total bytes currently pinned in host DRAM by this PD.
    pub fn pinned_bytes(&self) -> ByteSize {
        self.inner.lock().pinned
    }

    /// The memory device of the first registered MR, if any (used as a
    /// destination-memory hint for one-sided flows).
    pub fn primary_target(&self) -> Option<MemoryTarget> {
        self.inner.lock().mrs.first().map(|m| m.target)
    }

    /// Mean size of the registered MRs (zero if none).
    pub fn mean_mr_size(&self) -> ByteSize {
        let inner = self.inner.lock();
        if inner.mrs.is_empty() {
            return ByteSize::ZERO;
        }
        let total: u64 = inner.mrs.iter().map(|m| m.length.as_bytes()).sum();
        ByteSize::from_bytes(total / inner.mrs.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collie_host::presets;
    use collie_rnic::spec::RnicModel;

    fn device() -> RdmaDevice {
        RdmaDevice::new(
            presets::intel_xeon_gpu_host("t", ByteSize::from_gib(4), true),
            RnicModel::Cx6Dx200.spec(),
            0,
        )
    }

    #[test]
    fn query_device_and_port() {
        let ctx = device().open();
        let attr = ctx.query_device();
        assert_eq!(attr.max_qp, 20_000);
        assert_eq!(attr.max_mr, 200_000);
        let port = ctx.query_port();
        assert_eq!(port.link_speed.gbps(), 200.0);
        assert_eq!(port.active_mtu, Mtu::Mtu1024);
    }

    #[test]
    fn register_and_lookup_mr() {
        let pd = device().open().alloc_pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(64),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        assert_eq!(pd.mr_count(), 1);
        assert_eq!(pd.lookup(mr.lkey).unwrap(), mr);
        assert_ne!(mr.lkey, mr.rkey);
        assert_eq!(pd.pinned_bytes(), ByteSize::from_kib(64));
        pd.dereg_mr(&mr).unwrap();
        assert_eq!(pd.mr_count(), 0);
        assert_eq!(pd.pinned_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn keys_are_unique() {
        let pd = device().open().alloc_pd();
        let a = pd
            .reg_mr(
                ByteSize::from_kib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let b = pd
            .reg_mr(
                ByteSize::from_kib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        assert_ne!(a.lkey, b.lkey);
        assert_ne!(a.rkey, b.rkey);
    }

    #[test]
    fn zero_length_registration_fails() {
        let pd = device().open().alloc_pd();
        let err = pd
            .reg_mr(
                ByteSize::ZERO,
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::RegistrationFailed { .. }));
    }

    #[test]
    fn pinning_is_bounded_by_installed_dram() {
        let pd = device().open().alloc_pd();
        pd.reg_mr(
            ByteSize::from_gib(3),
            MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
        let err = pd
            .reg_mr(
                ByteSize::from_gib(2),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::RegistrationFailed { .. }));
    }

    #[test]
    fn gpu_registration_requires_an_installed_gpu() {
        let pd = device().open().alloc_pd();
        assert!(pd
            .reg_mr(
                ByteSize::from_mib(16),
                MemoryTarget::GpuMemory { gpu_id: 0 },
                AccessFlags::FULL
            )
            .is_ok());
        let err = pd
            .reg_mr(
                ByteSize::from_mib(16),
                MemoryTarget::GpuMemory { gpu_id: 99 },
                AccessFlags::FULL,
            )
            .unwrap_err();
        assert!(matches!(err, VerbsError::RegistrationFailed { .. }));
    }

    #[test]
    fn dereg_unknown_mr_fails() {
        let pd = device().open().alloc_pd();
        let mr = MemoryRegion {
            lkey: 777,
            rkey: 778,
            length: ByteSize::from_kib(4),
            target: MemoryTarget::local_dram(),
            access: AccessFlags::FULL,
        };
        assert!(matches!(
            pd.dereg_mr(&mr).unwrap_err(),
            VerbsError::UnknownHandle { .. }
        ));
    }

    #[test]
    fn mean_mr_size() {
        let pd = device().open().alloc_pd();
        pd.reg_mr(
            ByteSize::from_kib(4),
            MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
        pd.reg_mr(
            ByteSize::from_kib(12),
            MemoryTarget::local_dram(),
            AccessFlags::FULL,
        )
        .unwrap();
        assert_eq!(pd.mean_mr_size(), ByteSize::from_kib(8));
        let empty = device().open().alloc_pd();
        assert_eq!(empty.mean_mr_size(), ByteSize::ZERO);
    }
}
