//! Queue pairs.
//!
//! A queue pair is RDMA's connection object: a send queue and a receive
//! queue driven through the `RESET → INIT → RTR → RTS` state machine by
//! `ibv_modify_qp`. The transport type chosen at creation (RC, UC, UD) and
//! the way work requests are batched onto the send queue are two of
//! Collie's four search dimensions, so the QP model tracks exactly those
//! properties and exposes them to the fabric as a traffic profile.

use crate::cq::CompletionQueue;
use crate::device::ProtectionDomain;
use crate::error::{Result, VerbsError};
use crate::types::{Mtu, RecvWr, SendWr, WrOpcode};
use collie_host::memory::MemoryTarget;
use collie_rnic::workload::Transport;
use std::collections::VecDeque;

/// QP state machine states (subset of `ibv_qp_state`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QpState {
    /// Freshly created.
    Reset,
    /// Initialised (receive work requests may be posted).
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send (fully connected).
    Rts,
    /// Broken.
    Error,
}

impl QpState {
    fn name(self) -> &'static str {
        match self {
            QpState::Reset => "RESET",
            QpState::Init => "INIT",
            QpState::Rtr => "RTR",
            QpState::Rts => "RTS",
            QpState::Error => "ERROR",
        }
    }
}

/// Queue capacities requested at creation (`ibv_qp_cap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpCaps {
    /// Maximum outstanding send work requests.
    pub max_send_wr: u32,
    /// Maximum outstanding receive work requests.
    pub max_recv_wr: u32,
    /// Maximum scatter/gather entries per send WR.
    pub max_send_sge: u32,
    /// Maximum scatter/gather entries per receive WR.
    pub max_recv_sge: u32,
}

impl Default for QpCaps {
    fn default() -> Self {
        QpCaps {
            max_send_wr: 128,
            max_recv_wr: 128,
            max_send_sge: 16,
            max_recv_sge: 16,
        }
    }
}

/// Attributes supplied when moving a QP to RTR (`ibv_modify_qp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpAttr {
    /// Negotiated path MTU.
    pub path_mtu: Mtu,
    /// The remote QP number.
    pub dest_qp_num: u32,
    /// Which testbed host the remote QP lives on (0 = A, 1 = B); the fabric
    /// uses this to derive flow directions, including loopback.
    pub dest_host_index: usize,
}

/// The flattened description of the traffic one QP is posting, consumed by
/// the fabric when it groups QPs into flows.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficProfile {
    /// QP transport.
    pub transport: Transport,
    /// Opcode of the posted work (the dominant opcode if mixed).
    pub opcode: WrOpcode,
    /// Request sizes in posting order.
    pub message_sizes: Vec<u64>,
    /// Mean scatter/gather entries per WR (at least 1).
    pub sge_per_wqe: u32,
    /// Mean WRs per post_send call (doorbell batch size).
    pub wqe_batch: u32,
    /// Send queue depth.
    pub send_queue_depth: u32,
    /// Receive queue depth.
    pub recv_queue_depth: u32,
    /// Negotiated path MTU in bytes.
    pub mtu: u32,
    /// Memory device backing the QP's local buffers.
    pub local_memory: MemoryTarget,
    /// This QP's host (0 = A, 1 = B).
    pub host_index: usize,
    /// The remote QP's host.
    pub remote_host_index: usize,
}

/// A queue pair (`ibv_qp`).
#[derive(Debug, Clone)]
pub struct QueuePair {
    qp_num: u32,
    transport: Transport,
    caps: QpCaps,
    state: QpState,
    pd: ProtectionDomain,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    path_mtu: Mtu,
    host_index: usize,
    remote_qp_num: Option<u32>,
    remote_host_index: Option<usize>,
    pending_sends: Vec<SendWr>,
    pending_recvs: VecDeque<RecvWr>,
    batch_sizes: Vec<usize>,
}

impl QueuePair {
    /// Create a QP on a protection domain (`ibv_create_qp`).
    pub fn create(
        pd: &ProtectionDomain,
        send_cq: &CompletionQueue,
        recv_cq: &CompletionQueue,
        transport: Transport,
        caps: QpCaps,
    ) -> Result<QueuePair> {
        if caps.max_send_wr == 0 || caps.max_recv_wr == 0 {
            return Err(VerbsError::InvalidAttribute {
                reason: "queue depths must be non-zero".to_string(),
            });
        }
        Ok(QueuePair {
            qp_num: pd.device.next_qp_num(),
            transport,
            caps,
            state: QpState::Reset,
            pd: pd.clone(),
            send_cq: send_cq.clone(),
            recv_cq: recv_cq.clone(),
            path_mtu: Mtu::Mtu1024,
            host_index: pd.device.host_index,
            remote_qp_num: None,
            remote_host_index: None,
            pending_sends: Vec::new(),
            pending_recvs: VecDeque::new(),
            batch_sizes: Vec::new(),
        })
    }

    /// The QP number.
    pub fn qp_num(&self) -> u32 {
        self.qp_num
    }

    /// Current state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// Transport type.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Negotiated path MTU.
    pub fn path_mtu(&self) -> Mtu {
        self.path_mtu
    }

    /// Which testbed host this QP lives on.
    pub fn host_index(&self) -> usize {
        self.host_index
    }

    /// The host the remote end lives on, once connected.
    pub fn remote_host_index(&self) -> Option<usize> {
        self.remote_host_index
    }

    /// The remote QP number, once connected.
    pub fn remote_qp_num(&self) -> Option<u32> {
        self.remote_qp_num
    }

    /// The memory device incoming payloads land in, judged from the posted
    /// receive buffers (falling back to the PD's first registered MR, then
    /// to NUMA-local DRAM). The fabric uses this as the destination memory
    /// of flows targeting this QP.
    pub fn recv_memory_hint(&self) -> MemoryTarget {
        self.pending_recvs
            .front()
            .and_then(|wr| wr.sge.first())
            .and_then(|sge| self.pd.lookup(sge.lkey))
            .map(|mr| mr.target)
            .or_else(|| self.pd.primary_target())
            .unwrap_or(MemoryTarget::local_dram())
    }

    /// The send completion queue.
    pub fn send_cq(&self) -> &CompletionQueue {
        &self.send_cq
    }

    /// The receive completion queue.
    pub fn recv_cq(&self) -> &CompletionQueue {
        &self.recv_cq
    }

    /// The protection domain this QP belongs to.
    pub fn pd(&self) -> &ProtectionDomain {
        &self.pd
    }

    /// Move RESET → INIT.
    pub fn modify_to_init(&mut self) -> Result<()> {
        if self.state != QpState::Reset {
            return Err(VerbsError::InvalidQpState {
                operation: "modify to INIT",
                state: self.state.name(),
            });
        }
        self.state = QpState::Init;
        Ok(())
    }

    /// Move INIT → RTR, binding the remote endpoint and path MTU.
    pub fn modify_to_rtr(&mut self, attr: QpAttr) -> Result<()> {
        if self.state != QpState::Init {
            return Err(VerbsError::InvalidQpState {
                operation: "modify to RTR",
                state: self.state.name(),
            });
        }
        if !self.pd.device.spec.supports_mtu(attr.path_mtu.bytes()) {
            return Err(VerbsError::InvalidAttribute {
                reason: format!("device does not support MTU {}", attr.path_mtu.bytes()),
            });
        }
        self.path_mtu = attr.path_mtu;
        self.remote_qp_num = Some(attr.dest_qp_num);
        self.remote_host_index = Some(attr.dest_host_index);
        self.state = QpState::Rtr;
        Ok(())
    }

    /// Move RTR → RTS.
    pub fn modify_to_rts(&mut self) -> Result<()> {
        if self.state != QpState::Rtr {
            return Err(VerbsError::InvalidQpState {
                operation: "modify to RTS",
                state: self.state.name(),
            });
        }
        self.state = QpState::Rts;
        Ok(())
    }

    /// Post one receive work request (`ibv_post_recv`). Allowed from INIT
    /// onwards, exactly like the real API.
    pub fn post_recv(&mut self, wr: RecvWr) -> Result<()> {
        if matches!(self.state, QpState::Reset | QpState::Error) {
            return Err(VerbsError::InvalidQpState {
                operation: "post_recv",
                state: self.state.name(),
            });
        }
        if self.pending_recvs.len() >= self.caps.max_recv_wr as usize {
            return Err(VerbsError::QueueFull {
                queue: "receive queue",
                capacity: self.caps.max_recv_wr as usize,
            });
        }
        if wr.sge.len() > self.caps.max_recv_sge as usize {
            return Err(VerbsError::TooManySges {
                requested: wr.sge.len(),
                limit: self.caps.max_recv_sge as usize,
            });
        }
        self.validate_sges(&wr.sge, true)?;
        self.pending_recvs.push_back(wr);
        Ok(())
    }

    /// Post one send work request (`ibv_post_send` with a single WR).
    pub fn post_send(&mut self, wr: SendWr) -> Result<()> {
        self.post_send_batch(vec![wr])
    }

    /// Post a linked list of send work requests in one doorbell
    /// (`ibv_post_send` with a chained WR list). The batch size is what
    /// Table 2 calls the "WQE" column.
    pub fn post_send_batch(&mut self, wrs: Vec<SendWr>) -> Result<()> {
        if self.state != QpState::Rts {
            return Err(VerbsError::InvalidQpState {
                operation: "post_send",
                state: self.state.name(),
            });
        }
        if wrs.is_empty() {
            return Ok(());
        }
        if self.pending_sends.len() + wrs.len() > self.caps.max_send_wr as usize {
            return Err(VerbsError::QueueFull {
                queue: "send queue",
                capacity: self.caps.max_send_wr as usize,
            });
        }
        for wr in &wrs {
            if !wr.opcode.valid_on(self.transport) {
                return Err(VerbsError::UnsupportedOpcode {
                    opcode: wr.opcode.name(),
                    transport: match self.transport {
                        Transport::Rc => "RC",
                        Transport::Uc => "UC",
                        Transport::Ud => "UD",
                    },
                });
            }
            if wr.sge.len() > self.caps.max_send_sge as usize {
                return Err(VerbsError::TooManySges {
                    requested: wr.sge.len(),
                    limit: self.caps.max_send_sge as usize,
                });
            }
            self.validate_sges(&wr.sge, false)?;
        }
        self.batch_sizes.push(wrs.len());
        self.pending_sends.extend(wrs);
        Ok(())
    }

    fn validate_sges(&self, sges: &[crate::types::Sge], require_local_write: bool) -> Result<()> {
        for sge in sges {
            let mr = self.pd.lookup(sge.lkey).ok_or(VerbsError::UnknownHandle {
                kind: "memory region",
                handle: sge.lkey as u64,
            })?;
            if !mr.contains(sge.offset, sge.length) {
                return Err(VerbsError::AccessViolation {
                    reason: format!(
                        "SGE [{}, +{}) exceeds MR of {}",
                        sge.offset, sge.length, mr.length
                    ),
                });
            }
            if require_local_write && !mr.access.local_write {
                return Err(VerbsError::AccessViolation {
                    reason: "receive buffer MR lacks LOCAL_WRITE".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Number of send WRs waiting for the fabric to run.
    pub fn pending_send_count(&self) -> usize {
        self.pending_sends.len()
    }

    /// Number of posted receive WRs.
    pub fn pending_recv_count(&self) -> usize {
        self.pending_recvs.len()
    }

    /// Summarise the posted traffic for the fabric. Returns `None` if the QP
    /// has nothing to send or is not connected.
    pub fn traffic_profile(&self) -> Option<TrafficProfile> {
        if self.pending_sends.is_empty() || self.state != QpState::Rts {
            return None;
        }
        let remote_host_index = self.remote_host_index?;
        let first = &self.pending_sends[0];
        // The request-size vector is reported at scatter/gather-element
        // granularity: the RNIC issues one DMA per SG element, and the
        // anomalies that hinge on "a mix of short and long messages"
        // (e.g. the PCIe-ordering anomaly) are sensitive to exactly those
        // element sizes. Single-SGE work requests reduce to their total
        // length. The vector is capped to keep profiles bounded.
        let message_sizes: Vec<u64> = self
            .pending_sends
            .iter()
            .flat_map(|wr| {
                if wr.sge.len() <= 1 {
                    vec![wr.byte_len().max(1)]
                } else {
                    wr.sge.iter().map(|s| s.length.max(1)).collect()
                }
            })
            .take(256)
            .collect();
        let mean_sge = (self
            .pending_sends
            .iter()
            .map(|wr| wr.sge.len())
            .sum::<usize>() as f64
            / self.pending_sends.len() as f64)
            .round()
            .max(1.0) as u32;
        let mean_batch = (self.batch_sizes.iter().sum::<usize>() as f64
            / self.batch_sizes.len().max(1) as f64)
            .round()
            .max(1.0) as u32;
        let local_memory = first
            .sge
            .first()
            .and_then(|sge| self.pd.lookup(sge.lkey))
            .map(|mr| mr.target)
            .unwrap_or(MemoryTarget::local_dram());
        Some(TrafficProfile {
            transport: self.transport,
            opcode: first.opcode,
            message_sizes,
            sge_per_wqe: mean_sge,
            wqe_batch: mean_batch,
            send_queue_depth: self.caps.max_send_wr,
            recv_queue_depth: self.caps.max_recv_wr,
            mtu: self.path_mtu.bytes(),
            local_memory,
            host_index: self.host_index,
            remote_host_index,
        })
    }

    /// Drain the pending send WRs (the fabric calls this after a run) and
    /// return them so completions can be generated.
    pub(crate) fn take_pending_sends(&mut self) -> Vec<SendWr> {
        self.batch_sizes.clear();
        std::mem::take(&mut self.pending_sends)
    }

    /// Consume up to `n` receive WRs (the fabric calls this to match
    /// incoming SENDs) and return them.
    pub(crate) fn consume_recvs(&mut self, n: usize) -> Vec<RecvWr> {
        let n = n.min(self.pending_recvs.len());
        self.pending_recvs.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AccessFlags, Sge};
    use collie_host::presets;
    use collie_rnic::spec::RnicModel;
    use collie_sim::units::ByteSize;

    fn pd() -> ProtectionDomain {
        crate::device::RdmaDevice::new(
            presets::intel_xeon_host("t", 2, ByteSize::from_gib(64), true),
            RnicModel::Cx6Dx200.spec(),
            0,
        )
        .open()
        .alloc_pd()
    }

    fn connected_qp(pd: &ProtectionDomain, transport: Transport) -> QueuePair {
        let cq = CompletionQueue::new(1024);
        let mut qp = QueuePair::create(pd, &cq, &cq, transport, QpCaps::default()).unwrap();
        qp.modify_to_init().unwrap();
        qp.modify_to_rtr(QpAttr {
            path_mtu: Mtu::Mtu1024,
            dest_qp_num: 99,
            dest_host_index: 1,
        })
        .unwrap();
        qp.modify_to_rts().unwrap();
        qp
    }

    fn send_wr(lkey: u32, len: u64, opcode: WrOpcode) -> SendWr {
        SendWr {
            wr_id: 1,
            opcode,
            sge: vec![Sge::new(lkey, 0, len)],
            rkey: 0,
            remote_offset: 0,
            signaled: true,
        }
    }

    #[test]
    fn state_machine_enforces_order() {
        let pd = pd();
        let cq = CompletionQueue::new(16);
        let mut qp = QueuePair::create(&pd, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
        assert_eq!(qp.state(), QpState::Reset);
        // Cannot jump straight to RTS.
        assert!(qp.modify_to_rts().is_err());
        qp.modify_to_init().unwrap();
        assert!(qp.modify_to_init().is_err());
        qp.modify_to_rtr(QpAttr {
            path_mtu: Mtu::Mtu4096,
            dest_qp_num: 7,
            dest_host_index: 1,
        })
        .unwrap();
        qp.modify_to_rts().unwrap();
        assert_eq!(qp.state(), QpState::Rts);
        assert_eq!(qp.path_mtu(), Mtu::Mtu4096);
        assert_eq!(qp.remote_host_index(), Some(1));
    }

    #[test]
    fn post_send_requires_rts() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(64),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let cq = CompletionQueue::new(16);
        let mut qp = QueuePair::create(&pd, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
        let err = qp
            .post_send(send_wr(mr.lkey, 4096, WrOpcode::RdmaWrite))
            .unwrap_err();
        assert!(matches!(err, VerbsError::InvalidQpState { .. }));
    }

    #[test]
    fn post_recv_allowed_from_init() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(64),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let cq = CompletionQueue::new(16);
        let mut qp = QueuePair::create(&pd, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
        assert!(qp
            .post_recv(RecvWr {
                wr_id: 1,
                sge: vec![Sge::new(mr.lkey, 0, 4096)]
            })
            .is_err());
        qp.modify_to_init().unwrap();
        qp.post_recv(RecvWr {
            wr_id: 1,
            sge: vec![Sge::new(mr.lkey, 0, 4096)],
        })
        .unwrap();
        assert_eq!(qp.pending_recv_count(), 1);
    }

    #[test]
    fn ud_rejects_one_sided_opcodes() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(64),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut qp = connected_qp(&pd, Transport::Ud);
        let err = qp
            .post_send(send_wr(mr.lkey, 1024, WrOpcode::RdmaWrite))
            .unwrap_err();
        assert!(matches!(err, VerbsError::UnsupportedOpcode { .. }));
        qp.post_send(send_wr(mr.lkey, 1024, WrOpcode::Send))
            .unwrap();
    }

    #[test]
    fn sge_validation_catches_bad_ranges_and_keys() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut qp = connected_qp(&pd, Transport::Rc);
        // Range exceeds the MR.
        let err = qp
            .post_send(send_wr(mr.lkey, 8192, WrOpcode::RdmaWrite))
            .unwrap_err();
        assert!(matches!(err, VerbsError::AccessViolation { .. }));
        // Unknown lkey.
        let err = qp
            .post_send(send_wr(999, 64, WrOpcode::RdmaWrite))
            .unwrap_err();
        assert!(matches!(err, VerbsError::UnknownHandle { .. }));
    }

    #[test]
    fn send_queue_depth_is_enforced() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_kib(64),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let cq = CompletionQueue::new(1024);
        let mut qp = QueuePair::create(
            &pd,
            &cq,
            &cq,
            Transport::Rc,
            QpCaps {
                max_send_wr: 4,
                ..QpCaps::default()
            },
        )
        .unwrap();
        qp.modify_to_init().unwrap();
        qp.modify_to_rtr(QpAttr {
            path_mtu: Mtu::Mtu1024,
            dest_qp_num: 1,
            dest_host_index: 1,
        })
        .unwrap();
        qp.modify_to_rts().unwrap();
        for _ in 0..4 {
            qp.post_send(send_wr(mr.lkey, 64, WrOpcode::RdmaWrite))
                .unwrap();
        }
        let err = qp
            .post_send(send_wr(mr.lkey, 64, WrOpcode::RdmaWrite))
            .unwrap_err();
        assert!(matches!(err, VerbsError::QueueFull { capacity: 4, .. }));
    }

    #[test]
    fn sge_count_limit_is_enforced() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut qp = connected_qp(&pd, Transport::Rc);
        let wr = SendWr {
            wr_id: 1,
            opcode: WrOpcode::RdmaWrite,
            sge: (0..20).map(|i| Sge::new(mr.lkey, i * 64, 64)).collect(),
            rkey: 0,
            remote_offset: 0,
            signaled: true,
        };
        assert!(matches!(
            qp.post_send(wr).unwrap_err(),
            VerbsError::TooManySges { limit: 16, .. }
        ));
    }

    #[test]
    fn traffic_profile_reflects_posted_work() {
        let pd = pd();
        let mr = pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut qp = connected_qp(&pd, Transport::Rc);
        assert!(qp.traffic_profile().is_none(), "no traffic posted yet");
        let batch: Vec<SendWr> = (0..8)
            .map(|i| SendWr {
                wr_id: i,
                opcode: WrOpcode::RdmaWrite,
                sge: vec![
                    Sge::new(mr.lkey, 0, 128),
                    Sge::new(mr.lkey, 128, 65536 - 128),
                ],
                rkey: 0,
                remote_offset: 0,
                signaled: true,
            })
            .collect();
        qp.post_send_batch(batch).unwrap();
        let profile = qp.traffic_profile().unwrap();
        assert_eq!(profile.wqe_batch, 8);
        assert_eq!(profile.sge_per_wqe, 2);
        // Multi-SGE requests are reported at SG-element granularity.
        assert_eq!(profile.message_sizes.len(), 16);
        assert_eq!(profile.message_sizes[0], 128);
        assert_eq!(profile.message_sizes[1], 65536 - 128);
        assert_eq!(profile.mtu, 1024);
        assert_eq!(profile.host_index, 0);
        assert_eq!(profile.remote_host_index, 1);
    }

    #[test]
    fn unsupported_mtu_is_rejected() {
        let pd = pd();
        let cq = CompletionQueue::new(16);
        let mut qp = QueuePair::create(&pd, &cq, &cq, Transport::Rc, QpCaps::default()).unwrap();
        qp.modify_to_init().unwrap();
        // All standard MTUs are supported by CX-6, so fabricate failure by a
        // zero-depth cap instead: creation itself must reject it.
        assert!(QueuePair::create(
            &pd,
            &cq,
            &cq,
            Transport::Rc,
            QpCaps {
                max_send_wr: 0,
                ..QpCaps::default()
            }
        )
        .is_err());
    }
}
