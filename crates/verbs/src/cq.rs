//! Completion queues.
//!
//! Applications learn that work requests finished by polling a completion
//! queue (`ibv_poll_cq`). The simulated fabric pushes completions when it
//! runs a measurement window; capacity is enforced the way hardware does it
//! (a full CQ is an error condition the poster sees, not a silent drop).

use crate::error::{Result, VerbsError};
use crate::types::WorkCompletion;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Debug)]
struct CqInner {
    capacity: usize,
    entries: VecDeque<WorkCompletion>,
}

/// A completion queue (`ibv_cq`).
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    inner: Arc<Mutex<CqInner>>,
}

impl CompletionQueue {
    /// Create a CQ holding at most `capacity` completions
    /// (`ibv_create_cq`). A zero capacity is rounded up to one.
    pub fn new(capacity: usize) -> Self {
        CompletionQueue {
            inner: Arc::new(Mutex::new(CqInner {
                capacity: capacity.max(1),
                entries: VecDeque::new(),
            })),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Number of completions waiting to be polled.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no completions are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Poll up to `max` completions (`ibv_poll_cq`). Returns an empty vector
    /// when nothing has completed — exactly like the real call returning 0.
    pub fn poll(&self, max: usize) -> Vec<WorkCompletion> {
        let mut inner = self.inner.lock();
        let n = max.min(inner.entries.len());
        inner.entries.drain(..n).collect()
    }

    /// Push a completion (called by the fabric when a WR finishes).
    pub(crate) fn push(&self, wc: WorkCompletion) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.entries.len() >= inner.capacity {
            return Err(VerbsError::QueueFull {
                queue: "completion queue",
                capacity: inner.capacity,
            });
        }
        inner.entries.push_back(wc);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{WcOpcode, WcStatus};

    fn wc(id: u64) -> WorkCompletion {
        WorkCompletion {
            wr_id: id,
            status: WcStatus::Success,
            opcode: WcOpcode::Send,
            byte_len: 64,
            qp_num: 1,
        }
    }

    #[test]
    fn poll_returns_fifo_order() {
        let cq = CompletionQueue::new(8);
        for i in 0..5 {
            cq.push(wc(i)).unwrap();
        }
        let polled = cq.poll(3);
        assert_eq!(
            polled.iter().map(|c| c.wr_id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(cq.len(), 2);
        let rest = cq.poll(10);
        assert_eq!(rest.len(), 2);
        assert!(cq.is_empty());
    }

    #[test]
    fn empty_poll_returns_nothing() {
        let cq = CompletionQueue::new(4);
        assert!(cq.poll(16).is_empty());
    }

    #[test]
    fn overflow_is_an_error() {
        let cq = CompletionQueue::new(2);
        cq.push(wc(1)).unwrap();
        cq.push(wc(2)).unwrap();
        let err = cq.push(wc(3)).unwrap_err();
        assert!(matches!(err, VerbsError::QueueFull { capacity: 2, .. }));
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let cq = CompletionQueue::new(0);
        assert_eq!(cq.capacity(), 1);
        cq.push(wc(1)).unwrap();
        assert!(cq.push(wc(2)).is_err());
    }

    #[test]
    fn clones_share_the_queue() {
        let cq = CompletionQueue::new(4);
        let cq2 = cq.clone();
        cq.push(wc(9)).unwrap();
        assert_eq!(cq2.poll(1)[0].wr_id, 9);
    }
}
