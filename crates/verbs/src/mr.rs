//! Memory regions.
//!
//! `ibv_reg_mr` pins a range of host (or GPU) memory and hands the RNIC the
//! keys it needs to DMA into and out of it. Search Dimension 2 of the paper
//! is entirely about these objects: how many MRs are registered, how large
//! they are, and which memory device backs them.

use crate::types::AccessFlags;
use collie_host::memory::MemoryTarget;
use collie_sim::units::ByteSize;
use serde::{Deserialize, Serialize};

/// A registered memory region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Local key: quoted in SGEs of local work requests.
    pub lkey: u32,
    /// Remote key: handed to peers for one-sided operations.
    pub rkey: u32,
    /// Length of the pinned range in bytes.
    pub length: ByteSize,
    /// The memory device backing the region (DRAM on a NUMA node, or a
    /// GPU's HBM for GPU-Direct RDMA).
    pub target: MemoryTarget,
    /// Access permissions granted at registration.
    pub access: AccessFlags,
}

impl MemoryRegion {
    /// True if `[offset, offset + len)` lies inside the region.
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        offset
            .checked_add(len)
            .map(|end| end <= self.length.as_bytes())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr(len: u64) -> MemoryRegion {
        MemoryRegion {
            lkey: 1,
            rkey: 2,
            length: ByteSize::from_bytes(len),
            target: MemoryTarget::local_dram(),
            access: AccessFlags::FULL,
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let m = mr(4096);
        assert!(m.contains(0, 4096));
        assert!(m.contains(1024, 1024));
        assert!(!m.contains(1, 4096));
        assert!(!m.contains(4096, 1));
        assert!(m.contains(4096, 0));
    }

    #[test]
    fn contains_rejects_overflowing_ranges() {
        let m = mr(4096);
        assert!(!m.contains(u64::MAX, 2));
    }
}
