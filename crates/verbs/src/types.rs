//! Plain data types of the verbs API: work requests, scatter/gather
//! entries, completions, access flags, and path MTUs.

use collie_rnic::workload::{Opcode, Transport};
use serde::{Deserialize, Serialize};

/// MR access permissions (a subset of `ibv_access_flags`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessFlags {
    /// The local RNIC may write into this MR (needed for RECV and for being
    /// the target of remote READ responses).
    pub local_write: bool,
    /// Remote peers may READ from this MR.
    pub remote_read: bool,
    /// Remote peers may WRITE into this MR.
    pub remote_write: bool,
}

impl AccessFlags {
    /// Local access only.
    pub const LOCAL_ONLY: AccessFlags = AccessFlags {
        local_write: true,
        remote_read: false,
        remote_write: false,
    };

    /// Full local and remote access (what the workload engine registers).
    pub const FULL: AccessFlags = AccessFlags {
        local_write: true,
        remote_read: true,
        remote_write: true,
    };
}

impl Default for AccessFlags {
    fn default() -> Self {
        AccessFlags::LOCAL_ONLY
    }
}

/// RDMA path MTU values (the only sizes the standard allows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mtu {
    /// 256-byte path MTU.
    Mtu256,
    /// 512-byte path MTU.
    Mtu512,
    /// 1024-byte path MTU (what a 1500-byte Ethernet MTU leaves for RDMA).
    Mtu1024,
    /// 2048-byte path MTU.
    Mtu2048,
    /// 4096-byte path MTU (what a 4200-byte Ethernet MTU leaves for RDMA).
    Mtu4096,
}

impl Mtu {
    /// All valid MTUs in ascending order.
    pub const ALL: [Mtu; 5] = [
        Mtu::Mtu256,
        Mtu::Mtu512,
        Mtu::Mtu1024,
        Mtu::Mtu2048,
        Mtu::Mtu4096,
    ];

    /// The MTU in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            Mtu::Mtu256 => 256,
            Mtu::Mtu512 => 512,
            Mtu::Mtu1024 => 1024,
            Mtu::Mtu2048 => 2048,
            Mtu::Mtu4096 => 4096,
        }
    }

    /// The MTU enum for a byte count, if it is a valid RDMA MTU.
    pub fn from_bytes(bytes: u32) -> Option<Mtu> {
        Mtu::ALL.into_iter().find(|m| m.bytes() == bytes)
    }
}

/// Send-side work request opcodes (a subset of `ibv_wr_opcode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WrOpcode {
    /// Two-sided SEND (consumes a receive WQE at the responder).
    Send,
    /// One-sided RDMA WRITE.
    RdmaWrite,
    /// One-sided RDMA READ.
    RdmaRead,
}

impl WrOpcode {
    /// The flow-level opcode this WR maps to.
    pub fn flow_opcode(self) -> Opcode {
        match self {
            WrOpcode::Send => Opcode::Send,
            WrOpcode::RdmaWrite => Opcode::Write,
            WrOpcode::RdmaRead => Opcode::Read,
        }
    }

    /// Whether the opcode is valid on a transport.
    pub fn valid_on(self, transport: Transport) -> bool {
        self.flow_opcode().valid_on(transport)
    }

    /// Static name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            WrOpcode::Send => "SEND",
            WrOpcode::RdmaWrite => "RDMA_WRITE",
            WrOpcode::RdmaRead => "RDMA_READ",
        }
    }
}

/// One scatter/gather entry: a contiguous range inside a registered MR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sge {
    /// Local key of the MR the range lives in.
    pub lkey: u32,
    /// Offset of the range inside the MR.
    pub offset: u64,
    /// Length of the range in bytes.
    pub length: u64,
}

impl Sge {
    /// An SGE covering `[offset, offset + length)` of the MR with `lkey`.
    pub fn new(lkey: u32, offset: u64, length: u64) -> Sge {
        Sge {
            lkey,
            offset,
            length,
        }
    }
}

/// A send work request (`ibv_send_wr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SendWr {
    /// Application cookie returned in the completion.
    pub wr_id: u64,
    /// Operation.
    pub opcode: WrOpcode,
    /// Local scatter/gather list (the payload source for SEND/WRITE, the
    /// landing buffer for READ).
    pub sge: Vec<Sge>,
    /// Remote key for one-sided operations (ignored for SEND).
    pub rkey: u32,
    /// Remote offset for one-sided operations.
    pub remote_offset: u64,
    /// Whether a completion should be generated (unsignalled WRs still
    /// complete internally but produce no CQE).
    pub signaled: bool,
}

impl SendWr {
    /// Total payload length across the SG list.
    pub fn byte_len(&self) -> u64 {
        self.sge.iter().map(|s| s.length).sum()
    }
}

/// A receive work request (`ibv_recv_wr`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecvWr {
    /// Application cookie returned in the completion.
    pub wr_id: u64,
    /// Scatter list the incoming message is written into.
    pub sge: Vec<Sge>,
}

impl RecvWr {
    /// Total capacity of the receive buffer described by the SG list.
    pub fn byte_len(&self) -> u64 {
        self.sge.iter().map(|s| s.length).sum()
    }
}

/// Completion status (a subset of `ibv_wc_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WcStatus {
    /// The work request completed successfully.
    Success,
    /// A local protection error (bad SGE).
    LocalProtectionError,
    /// The remote side had no receive WQE posted (RNR).
    ReceiverNotReady,
}

/// Completion opcode (which kind of work completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WcOpcode {
    /// A send-side completion (SEND, WRITE, or READ done).
    Send,
    /// A receive-side completion (an incoming SEND landed).
    Recv,
}

/// One completion queue entry (`ibv_wc`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkCompletion {
    /// The cookie of the completed work request.
    pub wr_id: u64,
    /// Completion status.
    pub status: WcStatus,
    /// Which side of the exchange completed.
    pub opcode: WcOpcode,
    /// Bytes transferred.
    pub byte_len: u64,
    /// The QP number the completion belongs to.
    pub qp_num: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtu_roundtrip() {
        for mtu in Mtu::ALL {
            assert_eq!(Mtu::from_bytes(mtu.bytes()), Some(mtu));
        }
        assert_eq!(Mtu::from_bytes(1500), None);
        assert_eq!(Mtu::Mtu4096.bytes(), 4096);
    }

    #[test]
    fn opcode_mapping_and_validity() {
        assert_eq!(WrOpcode::Send.flow_opcode(), Opcode::Send);
        assert_eq!(WrOpcode::RdmaWrite.flow_opcode(), Opcode::Write);
        assert_eq!(WrOpcode::RdmaRead.flow_opcode(), Opcode::Read);
        assert!(WrOpcode::RdmaRead.valid_on(Transport::Rc));
        assert!(!WrOpcode::RdmaRead.valid_on(Transport::Ud));
        assert!(!WrOpcode::RdmaWrite.valid_on(Transport::Ud));
    }

    #[test]
    fn wr_byte_lengths_sum_sges() {
        let wr = SendWr {
            wr_id: 1,
            opcode: WrOpcode::RdmaWrite,
            sge: vec![
                Sge::new(1, 0, 128),
                Sge::new(1, 128, 65536),
                Sge::new(2, 0, 1024),
            ],
            rkey: 7,
            remote_offset: 0,
            signaled: true,
        };
        assert_eq!(wr.byte_len(), 128 + 65536 + 1024);
        let rwr = RecvWr {
            wr_id: 2,
            sge: vec![Sge::new(3, 0, 4096)],
        };
        assert_eq!(rwr.byte_len(), 4096);
    }

    #[test]
    fn access_flag_presets() {
        // The presets are consts, so compare them as values (a plain
        // `assert!` on their fields trips clippy::assertions_on_constants).
        let full = AccessFlags::FULL;
        assert!(full.remote_read && full.remote_write);
        let local = AccessFlags::LOCAL_ONLY;
        assert!(!local.remote_read);
        assert_eq!(AccessFlags::default(), AccessFlags::LOCAL_ONLY);
    }
}
