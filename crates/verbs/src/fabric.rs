//! The simulated fabric: two devices, one subsystem, out-of-band connection
//! setup, and the measurement loop.
//!
//! In the paper's workload engine, connections are exchanged over TCP
//! out-of-band, traffic is generated for 20–60 seconds, and the monitor
//! samples throughput and pause counters four times. [`Fabric`] plays all
//! three roles for applications written against the verbs API:
//!
//! * [`Fabric::connect`] performs the out-of-band QP number exchange and
//!   drives both QPs to RTS,
//! * [`Fabric::run`] derives the flow-level workload from the work requests
//!   the application has posted, evaluates it on the subsystem model, and
//!   delivers completions, and
//! * the returned [`Measurement`] is exactly what the anomaly monitor in
//!   `collie-core` consumes.

use crate::device::RdmaDevice;
use crate::error::{Result, VerbsError};
use crate::qp::{QpAttr, QueuePair, TrafficProfile};
use crate::types::{Mtu, WcOpcode, WcStatus, WorkCompletion, WrOpcode};
use collie_rnic::subsystem::{Measurement, Subsystem};
use collie_rnic::subsystems::SubsystemId;
use collie_rnic::workload::{Direction, FlowSpec, MessagePattern, WorkloadSpec};
use collie_sim::units::ByteSize;
use std::collections::BTreeMap;

/// The testbed as seen by verbs applications: two servers by default, N
/// servers when built with [`Fabric::with_hosts`] (the multi-host fabric
/// layer — every extra host is a copy of host B on its own switch port).
#[derive(Debug)]
pub struct Fabric {
    subsystem: Subsystem,
    devices: Vec<RdmaDevice>,
}

impl Fabric {
    /// Build a two-host fabric over an already-assembled subsystem (the
    /// paper's testbed).
    pub fn new(subsystem: Subsystem) -> Self {
        Fabric::with_hosts(subsystem, 2)
    }

    /// Build a fabric of `host_count` hosts (clamped to at least two):
    /// host 0 is the subsystem's host A, every further host a copy of
    /// host B — the homogeneous fleet the fabric campaigns model.
    pub fn with_hosts(subsystem: Subsystem, host_count: usize) -> Self {
        let count = host_count.max(2);
        let mut devices = Vec::with_capacity(count);
        devices.push(RdmaDevice::new(
            subsystem.host_a.clone(),
            subsystem.rnic.clone(),
            0,
        ));
        for index in 1..count {
            devices.push(RdmaDevice::new(
                subsystem.host_b.clone(),
                subsystem.rnic.clone(),
                index,
            ));
        }
        Fabric { subsystem, devices }
    }

    /// Build a fabric for one of the Table-1 subsystems.
    pub fn from_catalog(id: SubsystemId) -> Self {
        Fabric::new(id.build())
    }

    /// Number of hosts attached to the fabric.
    pub fn host_count(&self) -> usize {
        self.devices.len()
    }

    /// The device of host `index` (0 = A; out-of-range indices clamp to
    /// the last host).
    pub fn device(&self, index: usize) -> &RdmaDevice {
        &self.devices[index.min(self.devices.len() - 1)]
    }

    /// The underlying subsystem.
    pub fn subsystem(&self) -> &Subsystem {
        &self.subsystem
    }

    /// Mutable access to the underlying subsystem (for reconfiguration
    /// experiments such as applying the relaxed-ordering fix).
    pub fn subsystem_mut(&mut self) -> &mut Subsystem {
        &mut self.subsystem
    }

    /// Out-of-band connection setup: exchange QP numbers, negotiate `mtu`,
    /// and drive both QPs RESET→INIT→RTR→RTS.
    pub fn connect(a: &mut QueuePair, b: &mut QueuePair, mtu: Mtu) -> Result<()> {
        if a.transport() != b.transport() {
            return Err(VerbsError::ConnectionFailed {
                reason: format!("transport mismatch: {} vs {}", a.transport(), b.transport()),
            });
        }
        a.modify_to_init()?;
        b.modify_to_init()?;
        a.modify_to_rtr(QpAttr {
            path_mtu: mtu,
            dest_qp_num: b.qp_num(),
            dest_host_index: b.host_index(),
        })?;
        b.modify_to_rtr(QpAttr {
            path_mtu: mtu,
            dest_qp_num: a.qp_num(),
            dest_host_index: a.host_index(),
        })?;
        a.modify_to_rts()?;
        b.modify_to_rts()?;
        Ok(())
    }

    /// Let every connected QP exchange its posted traffic for one
    /// measurement window. Returns the subsystem measurement; completions
    /// are delivered to the QPs' completion queues.
    pub fn run(&mut self, qps: &mut [&mut QueuePair]) -> Result<Measurement> {
        let workload = self.derive_workload(qps);
        let measurement = self.subsystem.evaluate(&workload);
        self.deliver_completions(qps)?;
        Ok(measurement)
    }

    /// Derive the flow-level workload described by the QPs' posted work,
    /// without running it (useful for inspection and tests).
    pub fn derive_workload(&self, qps: &[&mut QueuePair]) -> WorkloadSpec {
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct GroupKey {
            host: usize,
            remote_host: usize,
            transport: String,
            opcode: String,
            mtu: u32,
            sge: u32,
            batch: u32,
            send_depth: u32,
            recv_depth: u32,
            memory: String,
        }

        let mut groups: BTreeMap<GroupKey, Vec<(TrafficProfile, usize)>> = BTreeMap::new();
        for (idx, qp) in qps.iter().enumerate() {
            if let Some(profile) = qp.traffic_profile() {
                let key = GroupKey {
                    host: profile.host_index,
                    remote_host: profile.remote_host_index,
                    transport: profile.transport.to_string(),
                    opcode: profile.opcode.name().to_string(),
                    mtu: profile.mtu,
                    sge: profile.sge_per_wqe,
                    batch: profile.wqe_batch,
                    send_depth: profile.send_queue_depth,
                    recv_depth: profile.recv_queue_depth,
                    memory: format!("{}", profile.local_memory),
                };
                groups.entry(key).or_default().push((profile, idx));
            }
        }

        let mut flows = Vec::new();
        for (_, members) in groups {
            let (profile, first_idx) = &members[0];
            let qp = &qps[*first_idx];
            // Cross-host pairs are evaluated on the two-host model with the
            // lower-indexed host in the "A" role (the fleet is homogeneous,
            // so every pair behaves like the calibrated host pair);
            // collocated client and server loop back through one RNIC.
            let direction = match (profile.host_index, profile.remote_host_index) {
                (s, r) if s == r => Direction::LoopbackA,
                (s, r) if s < r => Direction::AToB,
                _ => Direction::BToA,
            };
            let num_qps = members.len() as u32;
            let pd_mrs = qp.pd().mr_count() as u32;
            let dst_memory = qp
                .remote_qp_num()
                .and_then(|rqpn| {
                    qps.iter()
                        .find(|peer| peer.qp_num() == rqpn)
                        .map(|peer| peer.recv_memory_hint())
                })
                .unwrap_or(collie_host::memory::MemoryTarget::local_dram());
            flows.push(FlowSpec {
                direction,
                transport: profile.transport,
                opcode: profile.opcode.flow_opcode(),
                num_qps,
                mtu: profile.mtu,
                wqe_batch: profile.wqe_batch,
                sge_per_wqe: profile.sge_per_wqe,
                send_queue_depth: profile.send_queue_depth,
                recv_queue_depth: profile.recv_queue_depth,
                mrs_per_qp: (pd_mrs / num_qps.max(1)).max(1),
                mr_size: if qp.pd().mean_mr_size().as_bytes() == 0 {
                    ByteSize::from_kib(64)
                } else {
                    qp.pd().mean_mr_size()
                },
                messages: MessagePattern::new(profile.message_sizes.clone()),
                src_memory: profile.local_memory,
                dst_memory,
            });
        }
        WorkloadSpec { flows }
    }

    fn deliver_completions(&mut self, qps: &mut [&mut QueuePair]) -> Result<()> {
        // Pass 1: take every QP's pending sends and note, per remote QP, how
        // many two-sided messages it must absorb.
        let mut inbound_sends: BTreeMap<u32, Vec<(u64, u32)>> = BTreeMap::new();
        let mut send_completions: Vec<(usize, Vec<WorkCompletion>)> = Vec::new();
        for (idx, qp) in qps.iter_mut().enumerate() {
            let sends = qp.take_pending_sends();
            if sends.is_empty() {
                continue;
            }
            let remote = qp.remote_qp_num();
            let qp_num = qp.qp_num();
            let mut completions = Vec::new();
            for wr in sends {
                if wr.opcode == WrOpcode::Send {
                    if let Some(rqpn) = remote {
                        inbound_sends
                            .entry(rqpn)
                            .or_default()
                            .push((wr.byte_len(), qp_num));
                    }
                }
                if wr.signaled {
                    completions.push(WorkCompletion {
                        wr_id: wr.wr_id,
                        status: WcStatus::Success,
                        opcode: WcOpcode::Send,
                        byte_len: wr.byte_len(),
                        qp_num,
                    });
                }
            }
            send_completions.push((idx, completions));
        }

        // Pass 2: match inbound SENDs against posted receive WRs and deliver
        // receive completions (or degrade the send status to RNR when the
        // responder ran out of receive WQEs).
        for (idx, qp) in qps.iter_mut().enumerate() {
            let Some(arrivals) = inbound_sends.remove(&qp.qp_num()) else {
                continue;
            };
            let recvs = qp.consume_recvs(arrivals.len());
            for (slot, (byte_len, _sender)) in arrivals.iter().enumerate() {
                if let Some(recv) = recvs.get(slot) {
                    qp.recv_cq()
                        .push(WorkCompletion {
                            wr_id: recv.wr_id,
                            status: WcStatus::Success,
                            opcode: WcOpcode::Recv,
                            byte_len: *byte_len,
                            qp_num: qp.qp_num(),
                        })
                        .ok();
                } else {
                    // Receiver-not-ready: reflect it on the sender's
                    // completion below by rewriting the matching entry.
                    for (send_idx, completions) in send_completions.iter_mut() {
                        if *send_idx == idx {
                            continue;
                        }
                        if let Some(wc) = completions
                            .iter_mut()
                            .find(|wc| wc.status == WcStatus::Success && wc.byte_len == *byte_len)
                        {
                            wc.status = WcStatus::ReceiverNotReady;
                            break;
                        }
                    }
                }
            }
        }

        // Pass 3: publish send completions.
        for (idx, completions) in send_completions {
            for wc in completions {
                qps[idx].send_cq().push(wc).ok();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ProtectionDomain;
    use crate::qp::QpCaps;
    use crate::types::{AccessFlags, SendWr, Sge};
    use crate::CompletionQueue;
    use collie_host::memory::MemoryTarget;
    use collie_rnic::workload::{Opcode, Transport};

    struct Endpoint {
        pd: ProtectionDomain,
        cq: CompletionQueue,
    }

    fn endpoint(fabric: &Fabric, host: usize) -> Endpoint {
        let ctx = fabric.device(host).open();
        Endpoint {
            pd: ctx.alloc_pd(),
            cq: CompletionQueue::new(4096),
        }
    }

    fn qp(ep: &Endpoint, transport: Transport, caps: QpCaps) -> QueuePair {
        QueuePair::create(&ep.pd, &ep.cq, &ep.cq, transport, caps).unwrap()
    }

    fn write_wr(lkey: u32, wr_id: u64, len: u64) -> SendWr {
        SendWr {
            wr_id,
            opcode: WrOpcode::RdmaWrite,
            sge: vec![Sge::new(lkey, 0, len)],
            rkey: 1,
            remote_offset: 0,
            signaled: true,
        }
    }

    #[test]
    fn connect_and_run_a_simple_write_workload() {
        let mut fabric = Fabric::from_catalog(SubsystemId::B);
        let client = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 1);
        let mr = client
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        server
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();

        let mut a = qp(&client, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Rc, QpCaps::default());
        Fabric::connect(&mut a, &mut b, Mtu::Mtu4096).unwrap();

        for i in 0..16 {
            a.post_send(write_wr(mr.lkey, i, 65536)).unwrap();
        }
        let measurement = fabric.run(&mut [&mut a, &mut b]).unwrap();
        // Healthy subsystem B workload: near line rate, no pause frames.
        let dir = measurement.direction(Direction::AToB).unwrap();
        assert!(dir.throughput.gbps() > 90.0, "got {}", dir.throughput);
        assert!(measurement.max_pause_ratio() < 0.001);
        // The sender got 16 completions.
        assert_eq!(client.cq.poll(100).len(), 16);
        // Work was drained: a second run with nothing posted is empty.
        let again = fabric.derive_workload(&[&mut a, &mut b]);
        assert!(again.flows.is_empty());
    }

    #[test]
    fn connect_rejects_transport_mismatch() {
        let fabric = Fabric::from_catalog(SubsystemId::B);
        let client = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 1);
        let mut a = qp(&client, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Ud, QpCaps::default());
        assert!(matches!(
            Fabric::connect(&mut a, &mut b, Mtu::Mtu1024).unwrap_err(),
            VerbsError::ConnectionFailed { .. }
        ));
    }

    #[test]
    fn derive_workload_groups_identical_qps_into_one_flow() {
        let fabric = Fabric::from_catalog(SubsystemId::F);
        let client = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 1);
        let mr = client
            .pd
            .reg_mr(
                ByteSize::from_mib(16),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        server
            .pd
            .reg_mr(
                ByteSize::from_mib(16),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();

        let mut client_qps = Vec::new();
        let mut server_qps = Vec::new();
        for _ in 0..4 {
            let mut a = qp(&client, Transport::Rc, QpCaps::default());
            let mut b = qp(&server, Transport::Rc, QpCaps::default());
            Fabric::connect(&mut a, &mut b, Mtu::Mtu4096).unwrap();
            a.post_send_batch((0..8).map(|i| write_wr(mr.lkey, i, 262_144)).collect())
                .unwrap();
            client_qps.push(a);
            server_qps.push(b);
        }
        let mut refs: Vec<&mut QueuePair> =
            client_qps.iter_mut().chain(server_qps.iter_mut()).collect();
        let workload = fabric.derive_workload(&refs);
        assert_eq!(workload.flows.len(), 1);
        let flow = &workload.flows[0];
        assert_eq!(flow.num_qps, 4);
        assert_eq!(flow.direction, Direction::AToB);
        assert_eq!(flow.opcode, Opcode::Write);
        assert_eq!(flow.wqe_batch, 8);
        assert_eq!(flow.mtu, 4096);
        drop(refs.drain(..));
    }

    #[test]
    fn two_sided_traffic_delivers_receive_completions() {
        let mut fabric = Fabric::from_catalog(SubsystemId::B);
        let client = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 1);
        let smr = client
            .pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let rmr = server
            .pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();

        let mut a = qp(&client, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Rc, QpCaps::default());
        Fabric::connect(&mut a, &mut b, Mtu::Mtu1024).unwrap();
        for i in 0..4 {
            b.post_recv(crate::types::RecvWr {
                wr_id: 100 + i,
                sge: vec![Sge::new(rmr.lkey, 0, 4096)],
            })
            .unwrap();
        }
        for i in 0..4 {
            a.post_send(SendWr {
                wr_id: i,
                opcode: WrOpcode::Send,
                sge: vec![Sge::new(smr.lkey, 0, 2048)],
                rkey: 0,
                remote_offset: 0,
                signaled: true,
            })
            .unwrap();
        }
        fabric.run(&mut [&mut a, &mut b]).unwrap();
        let send_wcs = client.cq.poll(10);
        assert_eq!(send_wcs.len(), 4);
        assert!(send_wcs.iter().all(|wc| wc.status == WcStatus::Success));
        let recv_wcs = server.cq.poll(10);
        assert_eq!(recv_wcs.len(), 4);
        assert!(recv_wcs.iter().all(|wc| wc.opcode == WcOpcode::Recv));
        assert_eq!(recv_wcs[0].byte_len, 2048);
    }

    #[test]
    fn missing_receive_wqes_surface_as_rnr() {
        let mut fabric = Fabric::from_catalog(SubsystemId::B);
        let client = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 1);
        let smr = client
            .pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        server
            .pd
            .reg_mr(
                ByteSize::from_mib(1),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut a = qp(&client, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Rc, QpCaps::default());
        Fabric::connect(&mut a, &mut b, Mtu::Mtu1024).unwrap();
        // No receive WQEs posted at the server.
        a.post_send(SendWr {
            wr_id: 1,
            opcode: WrOpcode::Send,
            sge: vec![Sge::new(smr.lkey, 0, 512)],
            rkey: 0,
            remote_offset: 0,
            signaled: true,
        })
        .unwrap();
        fabric.run(&mut [&mut a, &mut b]).unwrap();
        let wcs = client.cq.poll(10);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].status, WcStatus::ReceiverNotReady);
    }

    #[test]
    fn multi_host_fabric_connects_and_classifies_cross_host_pairs() {
        let mut fabric = Fabric::with_hosts(SubsystemId::B.build(), 4);
        assert_eq!(fabric.host_count(), 4);
        // Hosts 2 and 3 are real devices with their own indices.
        assert_eq!(fabric.device(2).host_index(), 2);
        assert_eq!(fabric.device(9).host_index(), 3, "out of range clamps");

        let client = endpoint(&fabric, 2);
        let server = endpoint(&fabric, 3);
        let mr = client
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        server
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut a = qp(&client, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Rc, QpCaps::default());
        Fabric::connect(&mut a, &mut b, Mtu::Mtu4096).unwrap();
        for i in 0..8 {
            a.post_send(write_wr(mr.lkey, i, 65536)).unwrap();
        }
        // The 2 -> 3 pair maps onto the calibrated host pair in the A role.
        let workload = fabric.derive_workload(&[&mut a, &mut b]);
        assert_eq!(workload.flows.len(), 1);
        assert_eq!(workload.flows[0].direction, Direction::AToB);
        // And the measurement loop delivers completions as on two hosts.
        let measurement = fabric.run(&mut [&mut a, &mut b]).unwrap();
        assert!(
            measurement
                .direction(Direction::AToB)
                .unwrap()
                .throughput
                .gbps()
                > 90.0
        );
        assert_eq!(client.cq.poll(100).len(), 8);
    }

    #[test]
    fn loopback_qps_are_classified_as_loopback_flows() {
        let fabric = Fabric::from_catalog(SubsystemId::F);
        let worker = endpoint(&fabric, 0);
        let server = endpoint(&fabric, 0); // same host: collocated
        let mr = worker
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        server
            .pd
            .reg_mr(
                ByteSize::from_mib(4),
                MemoryTarget::local_dram(),
                AccessFlags::FULL,
            )
            .unwrap();
        let mut a = qp(&worker, Transport::Rc, QpCaps::default());
        let mut b = qp(&server, Transport::Rc, QpCaps::default());
        Fabric::connect(&mut a, &mut b, Mtu::Mtu4096).unwrap();
        a.post_send(write_wr(mr.lkey, 1, 262_144)).unwrap();
        let workload = fabric.derive_workload(&[&mut a, &mut b]);
        assert_eq!(workload.flows.len(), 1);
        assert_eq!(workload.flows[0].direction, Direction::LoopbackA);
    }
}
