//! Machine-readable lint reports (`LINT.json`).
//!
//! Same idiom as the bench harness's `BENCH_<name>.json`: a serde-derived
//! schema with an explicit `schema_version`, a first-violation
//! [`validate_lint_report`] gate CI runs before trusting the file, and a
//! JSON round-trip pinned by test. The text rendering ([`render_text`]) is
//! what a developer sees locally; the JSON is what CI archives.

use serde::{Deserialize, Serialize};

/// Bump when the report shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The rule that fired (`wall-clock`, `env-registry`, ...).
    pub rule: String,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line of the offending token.
    pub line: u64,
    /// 1-indexed column of the offending token.
    pub column: u64,
    /// What the rule objects to, and what would satisfy it.
    pub message: String,
}

/// The full outcome of one lint run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Schema version of this report ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// The workspace root that was scanned.
    pub root: String,
    /// Number of `.rs` files tokenized and checked.
    pub files_scanned: u64,
    /// Rules that ran, in canonical order.
    pub rules_run: Vec<String>,
    /// Rules skipped via `--allow` on the command line.
    pub rules_allowed: Vec<String>,
    /// Violations silenced by in-source `collie-lint:` annotations.
    pub suppressed: u64,
    /// Surviving violations, ordered by file, then line, then rule.
    pub violations: Vec<Violation>,
}

impl LintReport {
    /// Whether the run is clean (the bin's exit-0 condition).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Structural validity gate: CI refuses to archive a report that fails
/// this. Returns the first violated invariant as a human-readable string.
pub fn validate_lint_report(report: &LintReport) -> Result<(), String> {
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version is {} but this linter writes {}",
            report.schema_version, SCHEMA_VERSION
        ));
    }
    if report.root.is_empty() {
        return Err("root is empty".to_string());
    }
    if report.files_scanned == 0 {
        return Err("files_scanned is 0: the walker found no Rust files".to_string());
    }
    if report.rules_run.is_empty() {
        return Err("rules_run is empty: no rule executed".to_string());
    }
    for allowed in &report.rules_allowed {
        if report.rules_run.contains(allowed) {
            return Err(format!(
                "rule `{allowed}` is listed as both run and allowed"
            ));
        }
    }
    for (index, violation) in report.violations.iter().enumerate() {
        if violation.rule.is_empty() || violation.file.is_empty() || violation.message.is_empty() {
            return Err(format!("violation #{index} has an empty field"));
        }
        if violation.line == 0 {
            return Err(format!(
                "violation #{index} ({}) has line 0; lines are 1-indexed",
                violation.rule
            ));
        }
        if !report.rules_run.contains(&violation.rule) {
            return Err(format!(
                "violation #{index} cites rule `{}` which did not run",
                violation.rule
            ));
        }
    }
    Ok(())
}

/// Render the developer-facing text table.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "collie-lint: {} files, {} rules run",
        report.files_scanned,
        report.rules_run.len()
    ));
    if !report.rules_allowed.is_empty() {
        out.push_str(&format!(", allowed: {}", report.rules_allowed.join(", ")));
    }
    out.push_str(&format!(
        ", {} suppressed by annotation\n",
        report.suppressed
    ));
    if report.violations.is_empty() {
        out.push_str("clean: no violations\n");
        return out;
    }
    out.push_str(&format!("{} violation(s):\n", report.violations.len()));
    for violation in &report.violations {
        out.push_str(&format!(
            "  {}:{}:{} [{}] {}\n",
            violation.file, violation.line, violation.column, violation.rule, violation.message
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            schema_version: SCHEMA_VERSION,
            root: "/repo".to_string(),
            files_scanned: 42,
            rules_run: vec!["wall-clock".to_string(), "env-registry".to_string()],
            rules_allowed: vec!["rng-clone".to_string()],
            suppressed: 7,
            violations: vec![Violation {
                rule: "wall-clock".to_string(),
                file: "crates/core/src/eval.rs".to_string(),
                line: 34,
                column: 5,
                message: "Instant::now() in a deterministic crate".to_string(),
            }],
        }
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let report = sample();
        let json = serde_json::to_string_pretty(&report).expect("serialize");
        let back: LintReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("wall-clock"));
    }

    #[test]
    fn validation_accepts_the_sample_and_rejects_broken_reports() {
        assert_eq!(validate_lint_report(&sample()), Ok(()));

        let mut wrong_version = sample();
        wrong_version.schema_version = 99;
        assert!(validate_lint_report(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));

        let mut no_files = sample();
        no_files.files_scanned = 0;
        assert!(validate_lint_report(&no_files)
            .unwrap_err()
            .contains("files_scanned"));

        let mut zero_line = sample();
        zero_line.violations[0].line = 0;
        assert!(validate_lint_report(&zero_line)
            .unwrap_err()
            .contains("1-indexed"));

        let mut unknown_rule = sample();
        unknown_rule.violations[0].rule = "not-a-rule".to_string();
        assert!(validate_lint_report(&unknown_rule)
            .unwrap_err()
            .contains("did not run"));

        let mut both = sample();
        both.rules_allowed = vec!["wall-clock".to_string()];
        assert!(validate_lint_report(&both)
            .unwrap_err()
            .contains("both run and allowed"));
    }

    #[test]
    fn text_rendering_lists_violations_and_clean_runs() {
        let report = sample();
        let text = render_text(&report);
        assert!(text.contains("42 files"));
        assert!(text.contains("crates/core/src/eval.rs:34:5 [wall-clock]"));

        let mut clean = sample();
        clean.violations.clear();
        assert!(render_text(&clean).contains("clean: no violations"));
    }
}
