//! The determinism & contract rules.
//!
//! Each rule is a token-level matcher over one file's lexed stream (or,
//! for the doc/fixture cross-checks, over workspace-level facts the
//! engine in `lib.rs` assembles). The matchers deliberately consult the
//! *real* registries — [`collie_core::env::HOOKS`] for environment hooks,
//! [`collie_rnic::counters`] for counter names — instead of re-parsing
//! their source, so the linter can never drift from the contract it
//! enforces: adding a hook or a counter updates the lint at the same
//! commit, by construction.
//!
//! Matching happens on non-comment tokens only (comments carry the
//! suppression annotations, handled in `annot.rs`), and string-literal
//! rules match the literal's **entire** content — `"perf/nope"` is a
//! counter name, `"see perf/nope above"` is prose. That exactness is what
//! lets the linter's own tests embed offending snippets inside raw
//! strings without flagging themselves.

use crate::lexer::{Token, TokenKind};

/// A rule's identity and one-line contract, for `--list-rules` and docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Kebab-case rule name, as used in annotations and `--allow`.
    pub name: &'static str,
    /// What the rule enforces.
    pub doc: &'static str,
}

/// Every rule, in canonical (report) order.
pub const RULES: [RuleInfo; 8] = [
    RuleInfo {
        name: "wall-clock",
        doc: "deterministic crates must not read wall-clock time \
              (Instant::now, SystemTime, std::time) outside annotated \
              profiling sites",
    },
    RuleInfo {
        name: "env-registry",
        doc: "std::env::var(\"COLLIE_*\") must name a hook registered in \
              collie_core::env::HOOKS, and every registered hook must be \
              documented in README.md",
    },
    RuleInfo {
        name: "serde-skip",
        doc: "execution-detail fields (memoize, speculation, incremental) \
              on serde-derived structs must carry #[serde(skip)] so they \
              cannot leak into golden fixtures",
    },
    RuleInfo {
        name: "rng-clone",
        doc: "campaign RNG state may only be cloned inside annotated \
              speculation-planner regions (the committed stream must never \
              fork silently)",
    },
    RuleInfo {
        name: "counter-name",
        doc: "perf/, diag/ and fabric/ counter string literals must match \
              the canonical registry in collie_rnic::counters",
    },
    RuleInfo {
        name: "forbid-unsafe",
        doc: "every crate root and bin declares #![forbid(unsafe_code)]",
    },
    RuleInfo {
        name: "fixture-drift",
        doc: "golden fixtures referenced by root tests must exist under \
              tests/fixtures/, and every fixture on disk must be referenced \
              by a test",
    },
    RuleInfo {
        name: "annotation",
        doc: "collie-lint suppression annotations must parse, name a known \
              rule, and state a reason",
    },
];

/// All rule names, for annotation validation and `--allow` checking.
pub fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|rule| rule.name).collect()
}

/// Crates whose behaviour must be a pure function of (config, seed): the
/// campaign pipeline from the simulator up through the search layer. The
/// bench harness and the linter itself measure real time on purpose and
/// are out of scope.
pub const DETERMINISTIC_PREFIXES: [&str; 5] = [
    "crates/sim-engine/",
    "crates/host-model/",
    "crates/rnic-model/",
    "crates/verbs/",
    "crates/core/",
];

/// The execution-detail knobs that must never serialize (rule
/// `serde-skip`); kept in sync with `collie_core::env::HOOKS` by the
/// registry test there.
pub const EXEC_DETAIL_FIELDS: [&str; 3] = ["memoize", "speculation", "incremental"];

/// One rule hit before suppression filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The rule that fired.
    pub rule: &'static str,
    /// 1-indexed line of the offending token.
    pub line: usize,
    /// 1-indexed column of the offending token.
    pub column: usize,
    /// What the rule objects to.
    pub message: String,
}

impl Candidate {
    fn at(rule: &'static str, token: &Token, message: String) -> Candidate {
        Candidate {
            rule,
            line: token.line,
            column: token.column,
            message,
        }
    }
}

/// Whether `rel` lives in a deterministic crate (D1/D4 scope).
pub fn deterministic_scope(rel: &str) -> bool {
    DETERMINISTIC_PREFIXES
        .iter()
        .any(|prefix| rel.starts_with(prefix))
}

/// Whether `rel` is a crate root or bin root (D6 scope).
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")))
        || rel.starts_with("src/bin/")
        || (rel.starts_with("crates/") && rel.contains("/src/bin/"))
}

/// Run every file-scoped rule over one file's token stream.
pub fn check_file(rel: &str, tokens: &[Token]) -> Vec<Candidate> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|token| token.kind != TokenKind::Comment)
        .collect();
    let mut out = Vec::new();
    check_wall_clock(rel, &code, &mut out);
    check_env_registry(&code, &mut out);
    check_serde_skip(&code, &mut out);
    check_rng_clone(rel, &code, &mut out);
    check_counter_name(&code, &mut out);
    check_forbid_unsafe(rel, &code, &mut out);
    out
}

fn ident_at(code: &[&Token], index: usize, text: &str) -> bool {
    code.get(index)
        .is_some_and(|token| token.kind == TokenKind::Ident && token.text == text)
}

fn punct_at(code: &[&Token], index: usize, text: &str) -> bool {
    code.get(index)
        .is_some_and(|token| token.kind == TokenKind::Punct && token.text == text)
}

/// D1: no wall-clock reads in deterministic crates.
fn check_wall_clock(rel: &str, code: &[&Token], out: &mut Vec<Candidate>) {
    if !deterministic_scope(rel) {
        return;
    }
    for (index, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        match token.text.as_str() {
            "SystemTime" => out.push(Candidate::at(
                "wall-clock",
                token,
                "SystemTime read in a deterministic crate; campaign behaviour must be \
                 a pure function of (config, seed) — annotate profiling sites with \
                 `collie-lint: allow(wall-clock, reason = \"…\")`"
                    .to_string(),
            )),
            "std"
                if punct_at(code, index + 1, ":")
                    && punct_at(code, index + 2, ":")
                    && ident_at(code, index + 3, "time") =>
            {
                out.push(Candidate::at(
                    "wall-clock",
                    token,
                    "std::time used in a deterministic crate; simulated time lives in \
                     collie_sim — annotate profiling sites with \
                     `collie-lint: allow(wall-clock, reason = \"…\")`"
                        .to_string(),
                ));
            }
            "Instant"
                if punct_at(code, index + 1, ":")
                    && punct_at(code, index + 2, ":")
                    && ident_at(code, index + 3, "now") =>
            {
                out.push(Candidate::at(
                    "wall-clock",
                    token,
                    "Instant::now() in a deterministic crate; annotate profiling sites \
                     with `collie-lint: allow(wall-clock, reason = \"…\")`"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Whether `text` is exactly an environment-hook name (`COLLIE_` plus a
/// non-empty `[A-Z0-9_]` tail).
fn is_collie_env_name(text: &str) -> bool {
    text.strip_prefix("COLLIE_").is_some_and(|tail| {
        !tail.is_empty()
            && tail
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

/// D2 (code half): every literal `COLLIE_*` passed to `env::var` must be
/// a registered hook. (The doc half — every hook appears in the README —
/// is a workspace-level check in `lib.rs`.)
fn check_env_registry(code: &[&Token], out: &mut Vec<Candidate>) {
    for (index, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Str || !is_collie_env_name(&token.text) {
            continue;
        }
        let is_var_arg =
            index >= 2 && punct_at(code, index - 1, "(") && ident_at(code, index - 2, "var");
        if is_var_arg && collie_core::env::hook(&token.text).is_none() {
            out.push(Candidate::at(
                "env-registry",
                token,
                format!(
                    "std::env::var(\"{}\") reads an unregistered hook; declare it in \
                     collie_core::env::HOOKS (with grammar and doc) and the README table",
                    token.text
                ),
            ));
        }
    }
}

/// Index of the token closing the bracket opened at `open`, or `None`.
fn matching_close(code: &[&Token], open: usize) -> Option<usize> {
    let close = match code.get(open)?.text.as_str() {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return None,
    };
    let open_text = code[open].text.clone();
    let mut depth = 0usize;
    for (offset, token) in code[open..].iter().enumerate() {
        if token.kind != TokenKind::Punct {
            continue;
        }
        if token.text == open_text {
            depth += 1;
        } else if token.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(open + offset);
            }
        }
    }
    None
}

/// D3: execution-detail fields on serde-derived structs carry
/// `#[serde(skip)]`.
fn check_serde_skip(code: &[&Token], out: &mut Vec<Candidate>) {
    let mut index = 0;
    while index < code.len() {
        // Find `#[derive(… Serialize | Deserialize …)]`.
        if !(punct_at(code, index, "#") && punct_at(code, index + 1, "[")) {
            index += 1;
            continue;
        }
        let Some(attr_close) = matching_close(code, index + 1) else {
            return;
        };
        let attr = &code[index + 2..attr_close];
        let serde_derived = attr.first().is_some_and(|t| t.text == "derive")
            && attr.iter().any(|t| {
                t.kind == TokenKind::Ident && (t.text == "Serialize" || t.text == "Deserialize")
            });
        index = attr_close + 1;
        if !serde_derived {
            continue;
        }
        // Skip any further attributes and the visibility to the item keyword.
        let mut at = index;
        while punct_at(code, at, "#") && punct_at(code, at + 1, "[") {
            match matching_close(code, at + 1) {
                Some(close) => at = close + 1,
                None => return,
            }
        }
        if ident_at(code, at, "pub") {
            at += 1;
            if punct_at(code, at, "(") {
                match matching_close(code, at) {
                    Some(close) => at = close + 1,
                    None => return,
                }
            }
        }
        if !ident_at(code, at, "struct") {
            continue; // enums and derives on other items have no named knobs
        }
        // Find the named-field body (`;` or `(` first means unit/tuple).
        let body_open = code[at + 1..]
            .iter()
            .position(|token| matches!(token.text.as_str(), "{" | ";" | "("))
            .map(|offset| at + 1 + offset)
            .filter(|&found| code[found].text == "{");
        let Some(body_open) = body_open else { continue };
        let Some(body_close) = matching_close(code, body_open) else {
            return;
        };
        check_struct_fields(code, body_open, body_close, out);
        index = body_close + 1;
    }
}

/// Walk one named-struct body, checking each execution-detail field for a
/// preceding `#[serde(… skip …)]`.
fn check_struct_fields(
    code: &[&Token],
    body_open: usize,
    body_close: usize,
    out: &mut Vec<Candidate>,
) {
    let mut at = body_open + 1;
    let mut has_serde_skip = false;
    while at < body_close {
        // Field attributes.
        if punct_at(code, at, "#") && punct_at(code, at + 1, "[") {
            let Some(close) = matching_close(code, at + 1) else {
                return;
            };
            let attr = &code[at + 2..close];
            if attr.first().is_some_and(|t| t.text == "serde")
                && attr
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && t.text == "skip")
            {
                has_serde_skip = true;
            }
            at = close + 1;
            continue;
        }
        if ident_at(code, at, "pub") {
            at += 1;
            if punct_at(code, at, "(") {
                match matching_close(code, at) {
                    Some(close) => at = close + 1,
                    None => return,
                }
            }
            continue;
        }
        // The field name (an identifier directly followed by `:`).
        let token = code[at];
        if token.kind == TokenKind::Ident
            && punct_at(code, at + 1, ":")
            && EXEC_DETAIL_FIELDS.contains(&token.text.as_str())
            && !has_serde_skip
        {
            out.push(Candidate::at(
                "serde-skip",
                token,
                format!(
                    "execution-detail field `{}` on a serde-derived struct lacks \
                     #[serde(skip)]; execution knobs must never leak into golden fixtures",
                    token.text
                ),
            ));
        }
        // Skip the type, to the `,` that ends this field.
        at += 1;
        let mut depth = 0usize;
        while at < body_close {
            match code[at].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                "," if depth == 0 => {
                    at += 1;
                    break;
                }
                _ => {}
            }
            at += 1;
        }
        has_serde_skip = false;
    }
}

/// D4: campaign RNG clones only in annotated speculation-planner regions.
fn check_rng_clone(rel: &str, code: &[&Token], out: &mut Vec<Candidate>) {
    if !deterministic_scope(rel) {
        return;
    }
    for (index, token) in code.iter().enumerate() {
        let is_rng =
            token.kind == TokenKind::Ident && (token.text == "rng" || token.text.ends_with("_rng"));
        if is_rng
            && punct_at(code, index + 1, ".")
            && ident_at(code, index + 2, "clone")
            && punct_at(code, index + 3, "(")
        {
            out.push(Candidate::at(
                "rng-clone",
                token,
                format!(
                    "`{}.clone()` forks campaign RNG state; only annotated \
                     speculation-planner regions may do this (the committed stream \
                     must stay serial-order identical)",
                    token.text
                ),
            ));
        }
    }
}

/// Whether `text` is exactly a counter name (`perf/…`, `diag/…`,
/// `fabric/…`), and if so whether it is canonical.
fn counter_name_status(text: &str) -> Option<bool> {
    let (prefix, tail) = text.split_once('/')?;
    if tail.is_empty()
        || !tail
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    {
        return None;
    }
    let all: &[&str] = match prefix {
        "perf" => &collie_rnic::counters::perf::ALL,
        "diag" => &collie_rnic::counters::diag::ALL,
        "fabric" => &collie_rnic::counters::fabric::ALL,
        _ => return None,
    };
    Some(all.contains(&text))
}

/// D5: counter literals match the canonical registry.
fn check_counter_name(code: &[&Token], out: &mut Vec<Candidate>) {
    for token in code {
        if token.kind != TokenKind::Str {
            continue;
        }
        if counter_name_status(&token.text) == Some(false) {
            out.push(Candidate::at(
                "counter-name",
                token,
                format!(
                    "\"{}\" is not a registered counter; the canonical names live in \
                     collie_rnic::counters (a typo here would silently read zeros)",
                    token.text
                ),
            ));
        }
    }
}

/// D6: crate roots declare `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(rel: &str, code: &[&Token], out: &mut Vec<Candidate>) {
    if !is_crate_root(rel) {
        return;
    }
    let has_forbid = (0..code.len()).any(|index| {
        punct_at(code, index, "#")
            && punct_at(code, index + 1, "!")
            && punct_at(code, index + 2, "[")
            && ident_at(code, index + 3, "forbid")
            && punct_at(code, index + 4, "(")
            && ident_at(code, index + 5, "unsafe_code")
            && punct_at(code, index + 6, ")")
            && punct_at(code, index + 7, "]")
    });
    if !has_forbid {
        out.push(Candidate {
            rule: "forbid-unsafe",
            line: 1,
            column: 1,
            message: "crate root lacks #![forbid(unsafe_code)]; the workspace is a \
                      pure-Rust model and must stay that way"
                .to_string(),
        });
    }
}

/// Whether `text` is exactly a golden-fixture basename
/// (`golden_….json`).
pub fn is_golden_basename(text: &str) -> bool {
    text.strip_prefix("golden_")
        .and_then(|rest| rest.strip_suffix(".json"))
        .is_some_and(|stem| {
            !stem.is_empty()
                && stem
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Extract the fixture basename a string literal references, if any:
/// either a bare golden basename or a `…fixtures/<name>.json` path.
pub fn fixture_reference(text: &str) -> Option<String> {
    if is_golden_basename(text) {
        return Some(text.to_string());
    }
    let after = &text[text.find("fixtures/")? + "fixtures/".len()..];
    (!after.is_empty() && !after.contains('/') && after.ends_with(".json"))
        .then(|| after.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn candidates(rel: &str, source: &str) -> Vec<Candidate> {
        check_file(rel, &tokenize(source))
    }

    fn rules_fired(rel: &str, source: &str) -> Vec<&'static str> {
        candidates(rel, source)
            .into_iter()
            .map(|c| c.rule)
            .collect()
    }

    const DET: &str = "crates/core/src/x.rs";
    const NON_DET: &str = "crates/bench/src/x.rs";

    #[test]
    fn wall_clock_fires_in_deterministic_scope_only() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let fired = rules_fired(DET, src);
        assert_eq!(
            fired.iter().filter(|r| **r == "wall-clock").count(),
            2,
            "{fired:?}"
        );
        assert!(rules_fired(NON_DET, src).is_empty());
        // SystemTime alone is enough.
        assert_eq!(
            rules_fired(DET, "fn f() -> SystemTime { todo!() }"),
            ["wall-clock"]
        );
    }

    #[test]
    fn wall_clock_ignores_strings_and_comments() {
        let src = "// Instant::now() would be wrong here\nlet s = \"std::time::Instant\";";
        assert!(rules_fired(DET, src).is_empty());
    }

    #[test]
    fn env_registry_accepts_registered_and_rejects_unregistered() {
        let ok = r#"let v = std::env::var("COLLIE_MEMOIZE");"#;
        assert!(rules_fired(DET, ok).is_empty());
        let bad = r#"let v = std::env::var("COLLIE_BOGUS_HOOK");"#;
        let found = candidates(NON_DET, bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "env-registry");
        assert!(found[0].message.contains("COLLIE_BOGUS_HOOK"));
    }

    #[test]
    fn env_registry_ignores_literals_outside_var_calls() {
        // A mention in a table or assert is not an env read.
        let src = r#"assert_eq!(hook("COLLIE_BOGUS_HOOK"), None);"#;
        assert!(rules_fired(DET, src).is_empty());
    }

    #[test]
    fn serde_skip_requires_the_attribute_on_exec_detail_fields() {
        let bad = "#[derive(Debug, Serialize, Deserialize)]\npub struct C {\n    pub seed: u64,\n    pub memoize: bool,\n}";
        let found = candidates(NON_DET, bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "serde-skip");
        assert_eq!(found[0].line, 4);

        let ok = "#[derive(Serialize)]\npub struct C {\n    #[serde(skip)]\n    pub memoize: bool,\n    pub speculation_budget: u64,\n}";
        assert!(rules_fired(NON_DET, ok).is_empty());
    }

    #[test]
    fn serde_skip_ignores_non_serde_structs_and_other_fields() {
        let plain = "#[derive(Debug, Clone)]\npub struct C { pub memoize: bool }";
        assert!(rules_fired(NON_DET, plain).is_empty());
        let other = "#[derive(Serialize)]\npub struct C { pub seed: u64, pub budget: Option<u32> }";
        assert!(rules_fired(NON_DET, other).is_empty());
    }

    #[test]
    fn serde_skip_walks_complex_field_types() {
        let bad = "#[derive(Deserialize)]\nstruct C {\n    pub table: Vec<(String, Option<u64>)>,\n    speculation: Option<usize>,\n}";
        let found = candidates(NON_DET, bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn rng_clone_fires_on_rng_named_receivers_in_scope() {
        let src = "let fork = self.rng.clone();\nlet other = planner_rng.clone();\nlet fine = config.clone();";
        let found = candidates(DET, src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|c| c.rule == "rng-clone"));
        assert!(rules_fired(NON_DET, src).is_empty());
    }

    #[test]
    fn counter_name_checks_literals_against_the_registry() {
        let ok = r#"set("perf/tx_bytes_per_sec"); set("diag/mtt_cache_miss"); set("fabric/pause_spread");"#;
        assert!(rules_fired(DET, ok).is_empty());
        let bad = r#"set("diag/mtt_cache_mis");"#;
        let found = candidates(DET, bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "counter-name");
    }

    #[test]
    fn counter_name_ignores_prose_and_other_prefixes() {
        let src = r#"let a = "see diag/mtt_cache_miss for details"; let b = "other/name"; let c = "diag/";"#;
        assert!(rules_fired(DET, src).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let bare = "pub mod x;";
        let fired = rules_fired("crates/core/src/lib.rs", bare);
        assert_eq!(fired, ["forbid-unsafe"]);
        assert_eq!(rules_fired("src/lib.rs", bare), ["forbid-unsafe"]);
        assert_eq!(
            rules_fired("crates/bench/src/bin/fig4.rs", bare),
            ["forbid-unsafe"]
        );
        // Non-root modules don't need the attribute.
        assert!(rules_fired("crates/core/src/search/mod.rs", bare).is_empty());
        // And the attribute satisfies the rule.
        assert!(rules_fired(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod x;"
        )
        .is_empty());
    }

    #[test]
    fn fixture_reference_extraction() {
        assert_eq!(
            fixture_reference("golden_fig4.json"),
            Some("golden_fig4.json".to_string())
        );
        assert_eq!(
            fixture_reference("tests/fixtures/golden_fig7_bo.json"),
            Some("golden_fig7_bo.json".to_string())
        );
        assert_eq!(
            fixture_reference("golden_fig4.json (shared cache off)"),
            None
        );
        assert_eq!(fixture_reference("tests/fixtures"), None);
        assert_eq!(fixture_reference("not_golden.json"), None);
    }

    #[test]
    fn rule_names_are_unique_and_kebab_case() {
        let names = rule_names();
        for (index, name) in names.iter().enumerate() {
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{name}"
            );
            assert!(!names[..index].contains(name), "duplicate {name}");
        }
    }
}
