//! A from-scratch, line/column-tracked Rust tokenizer.
//!
//! The container has no registry access, so `syn` is not an option; the
//! rules also need far less than a full parse. What they do need — and
//! what a regex grep cannot deliver — is *string/char/comment awareness*:
//! `"Instant::now"` inside a string literal is data, `// Instant::now()`
//! inside a comment is prose, and only the bare identifier sequence is a
//! wall-clock call. The lexer therefore produces a faithful token stream
//! (identifiers, punctuation, literals, lifetimes, comments) with the
//! exact source line/column of every token, and leaves all syntax above
//! the token level to the rules.
//!
//! Supported literal forms: `"…"` with escapes, raw strings `r"…"` /
//! `r#"…"#` (any guard depth), byte strings `b"…"` / `br#"…"#`, char and
//! byte-char literals (`'a'`, `b'\n'`), lifetimes (`'a`, `'static`,
//! `'_`), raw identifiers (`r#match`), nested block comments, and numeric
//! literals with suffixes. The lexer never fails: unknown bytes become
//! single-character punctuation tokens, so a pathological file degrades
//! to noise tokens rather than aborting the whole lint run.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`Instant`, `struct`, `r#match`).
    Ident,
    /// A string or byte-string literal; [`Token::text`] holds the raw
    /// *content* between the quotes (escapes unprocessed).
    Str,
    /// A char or byte-char literal (`'a'`, `b'\0'`).
    Char,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A numeric literal, suffix included (`42`, `0x1F`, `1.5e3`, `7u64`).
    Number,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A line or block comment; [`Token::text`] holds the body without
    /// the `//` / `/* */` delimiters.
    Comment,
}

/// One token with its source position (1-indexed line and column of its
/// first character).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for which part of the source).
    pub text: String,
    /// 1-indexed source line of the token's first character.
    pub line: usize,
    /// 1-indexed source column of the token's first character.
    pub column: usize,
    /// Whether this token is the first non-whitespace token on its line
    /// (annotation comments use this to distinguish "standalone" from
    /// "trailing" placement).
    pub first_on_line: bool,
}

/// Character cursor over the source with line/column bookkeeping.
struct Cursor<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: usize,
    column: usize,
}

impl<'s> Cursor<'s> {
    fn new(source: &'s str) -> Self {
        Cursor {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `source` into the full token stream, comments included.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut cursor = Cursor::new(source);
    let mut tokens: Vec<Token> = Vec::new();
    let mut last_line_with_token = 0usize;
    while let Some(c) = cursor.peek() {
        if c.is_whitespace() {
            cursor.bump();
            continue;
        }
        let line = cursor.line;
        let column = cursor.column;
        let first_on_line = line != last_line_with_token;
        last_line_with_token = line;
        let push = |tokens: &mut Vec<Token>, kind, text: String| {
            tokens.push(Token {
                kind,
                text,
                line,
                column,
                first_on_line,
            });
        };
        match c {
            '/' => {
                cursor.bump();
                match cursor.peek() {
                    Some('/') => {
                        cursor.bump();
                        let mut body = String::new();
                        while let Some(n) = cursor.peek() {
                            if n == '\n' {
                                break;
                            }
                            body.push(n);
                            cursor.bump();
                        }
                        push(&mut tokens, TokenKind::Comment, body);
                    }
                    Some('*') => {
                        cursor.bump();
                        let mut body = String::new();
                        let mut depth = 1usize;
                        while depth > 0 {
                            match cursor.bump() {
                                Some('*') if cursor.peek() == Some('/') => {
                                    cursor.bump();
                                    depth -= 1;
                                    if depth > 0 {
                                        body.push_str("*/");
                                    }
                                }
                                Some('/') if cursor.peek() == Some('*') => {
                                    cursor.bump();
                                    depth += 1;
                                    body.push_str("/*");
                                }
                                Some(inner) => body.push(inner),
                                None => break,
                            }
                        }
                        push(&mut tokens, TokenKind::Comment, body);
                    }
                    _ => push(&mut tokens, TokenKind::Punct, "/".to_string()),
                }
            }
            '"' => {
                cursor.bump();
                let content = scan_string_body(&mut cursor);
                push(&mut tokens, TokenKind::Str, content);
            }
            '\'' => {
                cursor.bump();
                scan_quote(&mut cursor, &mut tokens, line, column, first_on_line);
            }
            'r' | 'b' => {
                let (kind, text) = scan_r_or_b(&mut cursor);
                push(&mut tokens, kind, text);
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                push(&mut tokens, TokenKind::Ident, text);
            }
            _ if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else if n == '.' {
                        // `1.5` continues the number; `1..x` does not.
                        let mut probe = cursor.chars.clone();
                        probe.next();
                        match probe.peek() {
                            Some(d) if d.is_ascii_digit() => {
                                text.push('.');
                                cursor.bump();
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                push(&mut tokens, TokenKind::Number, text);
            }
            _ => {
                cursor.bump();
                push(&mut tokens, TokenKind::Punct, c.to_string());
            }
        }
    }
    tokens
}

/// Consume a `"…"` body after the opening quote, returning the raw
/// content (escapes left as written).
fn scan_string_body(cursor: &mut Cursor<'_>) -> String {
    let mut content = String::new();
    while let Some(c) = cursor.bump() {
        match c {
            '\\' => {
                content.push('\\');
                if let Some(escaped) = cursor.bump() {
                    content.push(escaped);
                }
            }
            '"' => break,
            _ => content.push(c),
        }
    }
    content
}

/// After a consumed `'`: decide char literal vs lifetime.
fn scan_quote(
    cursor: &mut Cursor<'_>,
    tokens: &mut Vec<Token>,
    line: usize,
    column: usize,
    first_on_line: bool,
) {
    let mut push = |kind, text: String| {
        tokens.push(Token {
            kind,
            text,
            line,
            column,
            first_on_line,
        });
    };
    match cursor.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F}'.
            cursor.bump();
            let mut text = String::from("\\");
            if let Some(escaped) = cursor.bump() {
                text.push(escaped);
                if escaped == 'u' && cursor.peek() == Some('{') {
                    while let Some(c) = cursor.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cursor.peek() == Some('\'') {
                cursor.bump();
            }
            push(TokenKind::Char, text);
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char; 'a (no closing quote) is a lifetime.
            let mut probe = cursor.chars.clone();
            probe.next();
            if probe.peek() == Some(&'\'') {
                cursor.bump();
                cursor.bump();
                push(TokenKind::Char, c.to_string());
            } else {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                push(TokenKind::Lifetime, text);
            }
        }
        Some(c) => {
            // Non-alphabetic char literal: '0', ';', '}'.
            cursor.bump();
            if cursor.peek() == Some('\'') {
                cursor.bump();
            }
            push(TokenKind::Char, c.to_string());
        }
        None => push(TokenKind::Punct, "'".to_string()),
    }
}

/// After peeking `r` or `b`: raw string, byte string, byte char, raw
/// identifier, or a plain identifier starting with that letter.
fn scan_r_or_b(cursor: &mut Cursor<'_>) -> (TokenKind, String) {
    let first = cursor.bump().expect("caller peeked");
    // Collect what follows without consuming, to classify.
    match (first, cursor.peek()) {
        ('r', Some('"')) => {
            cursor.bump();
            (TokenKind::Str, scan_raw_string_body(cursor, 0))
        }
        ('r', Some('#')) => {
            // Either a raw string r#"…"# or a raw identifier r#match.
            let mut guards = 0usize;
            while cursor.peek() == Some('#') {
                guards += 1;
                cursor.bump();
            }
            if cursor.peek() == Some('"') {
                cursor.bump();
                (TokenKind::Str, scan_raw_string_body(cursor, guards))
            } else {
                let mut text = String::new();
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                (TokenKind::Ident, text)
            }
        }
        ('b', Some('"')) => {
            cursor.bump();
            (TokenKind::Str, scan_string_body(cursor))
        }
        ('b', Some('\'')) => {
            cursor.bump();
            let mut text = String::new();
            while let Some(c) = cursor.bump() {
                if c == '\\' {
                    text.push('\\');
                    if let Some(escaped) = cursor.bump() {
                        text.push(escaped);
                    }
                } else if c == '\'' {
                    break;
                } else {
                    text.push(c);
                }
            }
            (TokenKind::Char, text)
        }
        ('b', Some('r')) => {
            // br"…" / br#"…"# byte raw string, or an identifier like `bread`.
            let mut probe = cursor.chars.clone();
            probe.next();
            let after_r = probe.peek().copied();
            if after_r == Some('"') || after_r == Some('#') {
                cursor.bump();
                let mut guards = 0usize;
                while cursor.peek() == Some('#') {
                    guards += 1;
                    cursor.bump();
                }
                if cursor.peek() == Some('"') {
                    cursor.bump();
                    return (TokenKind::Str, scan_raw_string_body(cursor, guards));
                }
                // `br#ident` is not valid Rust; degrade to an identifier.
                let mut text = String::from("br");
                while let Some(n) = cursor.peek() {
                    if is_ident_continue(n) {
                        text.push(n);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                return (TokenKind::Ident, text);
            }
            finish_ident(cursor, first)
        }
        _ => finish_ident(cursor, first),
    }
}

/// Continue a plain identifier whose first character was already consumed.
fn finish_ident(cursor: &mut Cursor<'_>, first: char) -> (TokenKind, String) {
    let mut text = String::from(first);
    while let Some(n) = cursor.peek() {
        if is_ident_continue(n) {
            text.push(n);
            cursor.bump();
        } else {
            break;
        }
    }
    (TokenKind::Ident, text)
}

/// Consume a raw-string body after the opening quote, with `guards` `#`s.
fn scan_raw_string_body(cursor: &mut Cursor<'_>, guards: usize) -> String {
    let mut content = String::new();
    'outer: while let Some(c) = cursor.bump() {
        if c == '"' {
            // A close only counts with the full guard run behind it.
            let mut probe = cursor.chars.clone();
            for _ in 0..guards {
                if probe.next() != Some('#') {
                    content.push('"');
                    continue 'outer;
                }
            }
            for _ in 0..guards {
                cursor.bump();
            }
            return content;
        }
        content.push(c);
    }
    content
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        tokenize(source)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let tokens = tokenize("let x = a::b;\n  y.z()");
        assert_eq!(tokens[0].text, "let");
        assert_eq!((tokens[0].line, tokens[0].column), (1, 1));
        assert!(tokens[0].first_on_line);
        assert!(!tokens[1].first_on_line);
        let y = tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!((y.line, y.column), (2, 3));
        assert!(y.first_on_line);
        // `::` is two ':' puncts.
        assert_eq!(
            tokens.iter().filter(|t| t.text == ":").count(),
            2,
            "{tokens:?}"
        );
    }

    #[test]
    fn strings_keep_content_and_hide_code() {
        let tokens = kinds(r#"let s = "Instant::now()"; call();"#);
        assert!(tokens.contains(&(TokenKind::Str, "Instant::now()".to_string())));
        // The string body must NOT surface as identifiers.
        assert_eq!(
            tokens
                .iter()
                .filter(|(k, t)| *k == TokenKind::Ident && t == "Instant")
                .count(),
            0
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        let tokens =
            kinds("let a = r\"x\\y\"; let b = r#\"quote \" inside\"#; let c = b\"bytes\";");
        assert!(tokens.contains(&(TokenKind::Str, "x\\y".to_string())));
        assert!(tokens.contains(&(TokenKind::Str, "quote \" inside".to_string())));
        assert!(tokens.contains(&(TokenKind::Str, "bytes".to_string())));
    }

    #[test]
    fn escapes_do_not_terminate_strings() {
        let tokens = kinds(r#"let s = "a\"b"; ident_after"#);
        assert!(tokens.contains(&(TokenKind::Str, "a\\\"b".to_string())));
        assert!(tokens.contains(&(TokenKind::Ident, "ident_after".to_string())));
    }

    #[test]
    fn chars_versus_lifetimes() {
        let tokens = kinds("fn f<'a>(x: &'static str) { let c = 'q'; let n = '\\n'; }");
        assert!(tokens.contains(&(TokenKind::Lifetime, "a".to_string())));
        assert!(tokens.contains(&(TokenKind::Lifetime, "static".to_string())));
        assert!(tokens.contains(&(TokenKind::Char, "q".to_string())));
        assert!(tokens.contains(&(TokenKind::Char, "\\n".to_string())));
    }

    #[test]
    fn comments_are_tokens_with_bodies() {
        let tokens =
            tokenize("code(); // trailing note\n// standalone\nmore();\n/* block\nspan */");
        let comments: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 3);
        assert_eq!(comments[0].text, " trailing note");
        assert!(!comments[0].first_on_line);
        assert_eq!(comments[1].text, " standalone");
        assert!(comments[1].first_on_line);
        assert!(comments[2].text.contains("block"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let tokens = kinds("/* outer /* inner */ still */ after");
        assert_eq!(
            tokens.last(),
            Some(&(TokenKind::Ident, "after".to_string()))
        );
    }

    #[test]
    fn numbers_including_floats_and_ranges() {
        let tokens = kinds("let x = 1.5e3; for i in 0..10 { h(0x1F, 7u64); }");
        assert!(tokens.contains(&(TokenKind::Number, "1.5e3".to_string())));
        assert!(tokens.contains(&(TokenKind::Number, "0".to_string())));
        assert!(tokens.contains(&(TokenKind::Number, "10".to_string())));
        assert!(tokens.contains(&(TokenKind::Number, "0x1F".to_string())));
        assert!(tokens.contains(&(TokenKind::Number, "7u64".to_string())));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let tokens = kinds("let r#match = 1; br#\"raw\"#;");
        assert!(tokens.contains(&(TokenKind::Ident, "match".to_string())));
        assert!(tokens.contains(&(TokenKind::Str, "raw".to_string())));
    }
}
