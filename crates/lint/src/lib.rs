//! `collie_lint`: the workspace determinism & contract linter.
//!
//! The golden traces prove determinism *dynamically* — replay a campaign,
//! diff the bytes. This crate enforces the same invariants *statically*,
//! so a violation is caught at the offending line in CI's first minute
//! instead of as an opaque fixture diff an hour later. The contracts
//! (DESIGN.md §13):
//!
//! * **wall-clock** — deterministic crates never read real time;
//! * **env-registry** — every `COLLIE_*` env read goes through the
//!   [`collie_core::env::HOOKS`] registry, and every hook is documented
//!   in the README;
//! * **serde-skip** — execution-detail knobs never serialize into
//!   fixtures;
//! * **rng-clone** — campaign RNG state only forks in annotated
//!   speculation-planner regions;
//! * **counter-name** — counter literals match the canonical registry;
//! * **forbid-unsafe** — every crate root forbids `unsafe`;
//! * **fixture-drift** — golden fixtures on disk and the tests that
//!   reference them agree in both directions;
//! * **annotation** — suppressions themselves parse and carry reasons.
//!
//! The engine lints an in-memory [`Workspace`] so tests can feed it
//! synthetic snippets; [`lint_workspace_dir`] assembles one from disk by
//! walking `crates/`, `src/`, `tests/` and `examples/` (which naturally
//! excludes `vendor/` and `target/`). The `collie-lint` bin renders the
//! result as a text table or as the serde-validated JSON report CI
//! archives, in the same idiom as the bench harness's `BENCH_*.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annot;
pub mod lexer;
pub mod report;
pub mod rules;

use report::{LintReport, Violation, SCHEMA_VERSION};
use rules::Candidate;
use std::path::{Path, PathBuf};

/// Everything the linter looks at, in memory.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Label for the report's `root` field (a path, for disk workspaces).
    pub root: String,
    /// Every Rust file: (workspace-relative path with `/` separators,
    /// content).
    pub files: Vec<(String, String)>,
    /// `README.md` content, when present (the env-registry doc check).
    pub readme: Option<String>,
    /// Basenames of `tests/fixtures/*.json` on disk (the fixture-drift
    /// orphan check).
    pub fixtures: Vec<String>,
}

/// Engine options (the bin's `--allow` flags).
#[derive(Debug, Default)]
pub struct Options {
    /// Rules to skip entirely; violations of these are not reported.
    pub allow: Vec<String>,
}

/// Lint an in-memory workspace.
pub fn lint(workspace: &Workspace, options: &Options) -> LintReport {
    let all_rules = rules::rule_names();
    let allowed = |rule: &str| options.allow.iter().any(|a| a == rule);
    let mut suppressed = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    let mut push = |candidate: Candidate, file: &str| {
        violations.push(Violation {
            rule: candidate.rule.to_string(),
            file: file.to_string(),
            line: candidate.line as u64,
            column: candidate.column as u64,
            message: candidate.message,
        });
    };

    // Fixture references collected across root test files.
    let mut referenced: Vec<String> = Vec::new();

    for (rel, content) in &workspace.files {
        let tokens = lexer::tokenize(content);
        let (sup, problems) = annot::parse(&tokens, &all_rules);
        for candidate in rules::check_file(rel, &tokens) {
            if allowed(candidate.rule) {
                continue;
            }
            if sup.covers(candidate.rule, candidate.line) {
                suppressed += 1;
            } else {
                push(candidate, rel);
            }
        }
        if !allowed("annotation") {
            for problem in problems {
                push(
                    Candidate {
                        rule: "annotation",
                        line: problem.line,
                        column: problem.column,
                        message: problem.message,
                    },
                    rel,
                );
            }
        }
        // Fixture references only count from the root test suite — the
        // fixtures directory belongs to it.
        if rel.starts_with("tests/") && !allowed("fixture-drift") {
            for token in tokens.iter().filter(|t| t.kind == lexer::TokenKind::Str) {
                if let Some(name) = rules::fixture_reference(&token.text) {
                    if !workspace.fixtures.contains(&name) {
                        push(
                            Candidate {
                                rule: "fixture-drift",
                                line: token.line,
                                column: token.column,
                                message: format!(
                                    "test references fixture `{name}` which does not exist \
                                     under tests/fixtures/"
                                ),
                            },
                            rel,
                        );
                    }
                    referenced.push(name);
                }
            }
        }
    }

    // Fixture-drift, orphan direction: every fixture on disk is referenced.
    if !allowed("fixture-drift") {
        for fixture in &workspace.fixtures {
            if !referenced.contains(fixture) {
                push(
                    Candidate {
                        rule: "fixture-drift",
                        line: 1,
                        column: 1,
                        message: format!(
                            "fixture `{fixture}` is referenced by no root test; a golden \
                             trace nothing replays is dead weight or a renamed reference"
                        ),
                    },
                    &format!("tests/fixtures/{fixture}"),
                );
            }
        }
    }

    // Env-registry, doc direction: every registered hook is documented.
    if !allowed("env-registry") {
        match &workspace.readme {
            Some(readme) => {
                for hook in &collie_core::env::HOOKS {
                    if !readme.contains(hook.name) {
                        push(
                            Candidate {
                                rule: "env-registry",
                                line: 1,
                                column: 1,
                                message: format!(
                                    "registered hook `{}` is missing from the README \
                                     environment-hook table",
                                    hook.name
                                ),
                            },
                            "README.md",
                        );
                    }
                }
            }
            None => push(
                Candidate {
                    rule: "env-registry",
                    line: 1,
                    column: 1,
                    message: "README.md not found; the environment-hook table lives there"
                        .to_string(),
                },
                "README.md",
            ),
        }
    }

    violations.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, a.column).cmp(&(&b.file, b.line, &b.rule, b.column))
    });
    let (rules_allowed, rules_run): (Vec<_>, Vec<_>) =
        all_rules.iter().partition(|rule| allowed(rule));
    LintReport {
        schema_version: SCHEMA_VERSION,
        root: workspace.root.clone(),
        files_scanned: workspace.files.len() as u64,
        rules_run: rules_run.into_iter().map(str::to_string).collect(),
        rules_allowed: rules_allowed.into_iter().map(str::to_string).collect(),
        suppressed,
        violations,
    }
}

/// The directories a disk workspace is assembled from. Walking only these
/// keeps `vendor/` (foreign shim code) and `target/` out of scope.
const SCAN_DIRS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Assemble a [`Workspace`] from a repository root on disk.
pub fn load_workspace_dir(root: &Path) -> Result<Workspace, String> {
    let mut files: Vec<(String, String)> = Vec::new();
    for dir in SCAN_DIRS {
        let base = root.join(dir);
        if base.is_dir() {
            walk_rust_files(root, &base, &mut files)?;
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no Rust files found under {} (looked in {})",
            root.display(),
            SCAN_DIRS.join(", ")
        ));
    }
    files.sort();
    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    let mut fixtures: Vec<String> = Vec::new();
    let fixtures_dir = root.join("tests").join("fixtures");
    if fixtures_dir.is_dir() {
        let entries = std::fs::read_dir(&fixtures_dir)
            .map_err(|e| format!("read_dir {}: {e}", fixtures_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".json") {
                fixtures.push(name);
            }
        }
    }
    fixtures.sort();
    Ok(Workspace {
        root: root.display().to_string(),
        files,
        readme,
        fixtures,
    })
}

/// Lint a repository root on disk.
pub fn lint_workspace_dir(root: &Path, options: &Options) -> Result<LintReport, String> {
    Ok(lint(&load_workspace_dir(root)?, options))
}

/// Recursively collect `.rs` files under `dir` into `files`, with paths
/// relative to `root`.
fn walk_rust_files(
    root: &Path,
    dir: &Path,
    files: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path: PathBuf = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk_rust_files(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let content = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            files.push((rel, content));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: Vec<(&str, &str)>) -> Workspace {
        Workspace {
            root: "synthetic".to_string(),
            files: files
                .into_iter()
                .map(|(rel, content)| (rel.to_string(), content.to_string()))
                .collect(),
            readme: Some(
                collie_core::env::HOOKS
                    .iter()
                    .map(|hook| hook.name)
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
            fixtures: Vec::new(),
        }
    }

    fn fired(report: &LintReport) -> Vec<(&str, &str, u64)> {
        report
            .violations
            .iter()
            .map(|v| (v.rule.as_str(), v.file.as_str(), v.line))
            .collect()
    }

    #[test]
    fn clean_workspace_reports_clean() {
        let report = lint(
            &ws(vec![(
                "crates/core/src/search/x.rs",
                "pub fn f() -> u64 { 7 }",
            )]),
            &Options::default(),
        );
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.rules_run.len(), rules::RULES.len());
        assert_eq!(report::validate_lint_report(&report), Ok(()));
    }

    #[test]
    fn suppressed_violations_are_counted_not_reported() {
        let source = "// collie-lint: allow(wall-clock, reason = \"profiling site\")\nuse std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let report = lint(
            &ws(vec![("crates/core/src/x.rs", source)]),
            &Options::default(),
        );
        // The annotation covers line 2 (std::time); line 3's Instant::now
        // still fires.
        assert_eq!(report.suppressed, 1, "{:?}", report.violations);
        assert_eq!(fired(&report), [("wall-clock", "crates/core/src/x.rs", 3)]);
    }

    #[test]
    fn allow_flag_skips_a_rule_entirely() {
        let source = "use std::time::Instant;";
        let options = Options {
            allow: vec!["wall-clock".to_string()],
        };
        let report = lint(&ws(vec![("crates/core/src/x.rs", source)]), &options);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.rules_allowed, ["wall-clock"]);
        assert_eq!(report.suppressed, 0);
        assert_eq!(report::validate_lint_report(&report), Ok(()));
    }

    #[test]
    fn malformed_annotations_fire_the_meta_rule() {
        let source = "fn f() {} // collie-lint: allow(wall-clock)";
        let report = lint(
            &ws(vec![("crates/core/src/x.rs", source)]),
            &Options::default(),
        );
        assert_eq!(fired(&report), [("annotation", "crates/core/src/x.rs", 1)]);
    }

    #[test]
    fn fixture_drift_catches_both_directions() {
        let mut workspace = ws(vec![
            (
                "tests/golden.rs",
                r#"fn t() { load("golden_exists.json"); load("golden_missing.json"); }"#,
            ),
            // A non-root test referencing fixtures is out of scope.
            (
                "crates/core/tests/x.rs",
                r#"fn t() { load("golden_unrelated.json"); }"#,
            ),
        ]);
        workspace.fixtures = vec![
            "golden_exists.json".to_string(),
            "golden_orphan.json".to_string(),
        ];
        let report = lint(&workspace, &Options::default());
        assert_eq!(
            fired(&report),
            [
                ("fixture-drift", "tests/fixtures/golden_orphan.json", 1),
                ("fixture-drift", "tests/golden.rs", 1),
            ],
            "{:?}",
            report.violations
        );
        assert!(report.violations[1].message.contains("golden_missing.json"));
    }

    #[test]
    fn undocumented_hooks_are_reported_against_the_readme() {
        let mut workspace = ws(vec![("crates/core/src/x.rs", "pub fn f() {}")]);
        workspace.readme = Some("no table here".to_string());
        let report = lint(&workspace, &Options::default());
        assert_eq!(
            report.violations.len(),
            collie_core::env::HOOKS.len(),
            "{:?}",
            report.violations
        );
        assert!(report
            .violations
            .iter()
            .all(|v| v.rule == "env-registry" && v.file == "README.md"));
    }

    #[test]
    fn violations_are_sorted_by_file_then_line() {
        let report = lint(
            &ws(vec![
                (
                    "crates/core/src/b.rs",
                    "use std::time::Instant;\nfn f() { let r = rng.clone(); }",
                ),
                ("crates/core/src/a.rs", "use std::time::SystemTime;"),
            ]),
            &Options::default(),
        );
        let files: Vec<&str> = report.violations.iter().map(|v| v.file.as_str()).collect();
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "{:?}", report.violations);
    }

    #[test]
    fn missing_readme_is_one_violation() {
        let mut workspace = ws(vec![("crates/core/src/x.rs", "pub fn f() {}")]);
        workspace.readme = None;
        let report = lint(&workspace, &Options::default());
        assert_eq!(fired(&report), [("env-registry", "README.md", 1)]);
    }
}
