//! `collie-lint` — statically enforce the workspace determinism &
//! contract invariants (DESIGN.md §13).
//!
//! ```text
//! collie-lint [--root <path>] [--json] [--out <file>] [--allow <rule>]... [--list-rules]
//! ```
//!
//! Exit status: `0` clean, `1` violations found, `2` usage or internal
//! error. The default root is the workspace this binary was built from,
//! so `cargo run --bin collie-lint` from anywhere inside the repo lints
//! the repo. `--json` prints the machine-readable report (the same
//! serde-validated idiom as `BENCH_*.json`); `--out` additionally writes
//! it to a file for CI to archive.

#![forbid(unsafe_code)]

use collie_lint::report::{render_text, validate_lint_report};
use collie_lint::rules::RULES;
use collie_lint::{lint_workspace_dir, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: collie-lint [--root <path>] [--json] [--out <file>] \
                     [--allow <rule>]... [--list-rules]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;
    let mut allow: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in RULES {
                    println!("{:<14} {}", rule.name, rule.doc);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage_error("--root needs a path"),
            },
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return usage_error("--out needs a file path"),
            },
            "--allow" => match args.next() {
                Some(rule) => {
                    if !RULES.iter().any(|r| r.name == rule) {
                        return usage_error(&format!(
                            "--allow {rule}: no such rule (see --list-rules)"
                        ));
                    }
                    allow.push(rule);
                }
                None => return usage_error("--allow needs a rule name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other}")),
        }
    }

    // The manifest dir is `crates/lint`, two levels under the workspace
    // root this binary is meant to lint by default.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let report = match lint_workspace_dir(&root, &Options { allow }) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("collie-lint: {message}");
            return ExitCode::from(2);
        }
    };
    if let Err(message) = validate_lint_report(&report) {
        eprintln!("collie-lint: internal error: invalid report: {message}");
        return ExitCode::from(2);
    }

    let rendered_json = match serde_json::to_string_pretty(&report) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("collie-lint: internal error: serialize report: {error:?}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = out {
        if let Err(error) = std::fs::write(&path, &rendered_json) {
            eprintln!("collie-lint: write {}: {error}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        println!("{rendered_json}");
    } else {
        print!("{}", render_text(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("collie-lint: {message}\n{USAGE}");
    ExitCode::from(2)
}
