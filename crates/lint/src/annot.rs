//! Suppression annotations: the escape hatch every rule honours.
//!
//! A violation is only ever acceptable *with a stated reason*, so the
//! grammar makes the reason mandatory:
//!
//! ```text
//! // collie-lint: allow(<rule>, reason = "why this site is legitimate")
//! // collie-lint: begin(<rule>, reason = "why this whole region is")
//! // collie-lint: end(<rule>)
//! ```
//!
//! An `allow` written as a trailing comment covers its own line; written
//! standalone it covers the line of the next code token (so it can sit
//! above the offending statement). `begin`/`end` bracket a region; every
//! line strictly between them is covered for that one rule. Each
//! annotation names exactly one rule — blanket suppressions are not a
//! thing, by design.
//!
//! Annotations are parsed **only from comment tokens**, so an annotation
//! spelled inside a string literal (as the linter's own tests do) is
//! inert data, not a suppression. Malformed annotations — an unknown
//! rule, a missing or empty reason, an unmatched `begin`/`end` — are
//! themselves violations of the `annotation` meta-rule: a suppression
//! that silently failed to parse would otherwise *unsuppress* a site the
//! author believed was covered.

use crate::lexer::{Token, TokenKind};

/// The marker that starts every annotation comment (after trimming).
const MARKER: &str = "collie-lint:";

/// One parsed suppression: `rule` is off for lines `start..=end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The rule this span suppresses.
    pub rule: String,
    /// First covered line (1-indexed, inclusive).
    pub start: usize,
    /// Last covered line (inclusive).
    pub end: usize,
}

/// A malformed annotation, reported under the `annotation` meta-rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Problem {
    /// Line of the offending comment.
    pub line: usize,
    /// Column of the offending comment.
    pub column: usize,
    /// What was wrong with it.
    pub message: String,
}

/// Every suppression in one file, queryable by rule and line.
#[derive(Debug, Default)]
pub struct Suppressions {
    spans: Vec<Span>,
}

impl Suppressions {
    /// Whether `rule` is suppressed at `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        self.spans
            .iter()
            .any(|span| span.rule == rule && (span.start..=span.end).contains(&line))
    }

    /// Number of parsed suppression spans (for the report's bookkeeping).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the file has no suppressions at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Parse every annotation out of a file's token stream.
///
/// `known_rules` is the engine's rule-name list; an annotation naming
/// anything else is malformed (most likely a typo that would silently
/// suppress nothing).
pub fn parse(tokens: &[Token], known_rules: &[&str]) -> (Suppressions, Vec<Problem>) {
    let mut spans: Vec<Span> = Vec::new();
    let mut problems: Vec<Problem> = Vec::new();
    // Open `begin` regions, in nesting order: (rule, begin line).
    let mut open: Vec<(String, usize, usize)> = Vec::new();

    for (index, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Comment {
            continue;
        }
        let body = token.text.trim();
        // Doc comments and prose that merely *mention* the marker (with
        // backticks, in a sentence) are not annotations; only a comment
        // that begins with the bare marker is.
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let mut problem = |message: String| {
            problems.push(Problem {
                line: token.line,
                column: token.column,
                message,
            });
        };
        let rest = rest.trim();
        let Some((verb, args)) = split_call(rest) else {
            problem(format!(
                "malformed `collie-lint:` annotation: expected \
                 `allow(<rule>, reason = \"…\")`, `begin(<rule>, reason = \"…\")` \
                 or `end(<rule>)`, got `{rest}`"
            ));
            continue;
        };
        match verb {
            "allow" | "begin" => {
                let (rule, reason) = match split_rule_and_reason(args) {
                    Ok(parts) => parts,
                    Err(message) => {
                        problem(message);
                        continue;
                    }
                };
                if !known_rules.contains(&rule) {
                    problem(format!(
                        "annotation names unknown rule `{rule}` (known rules: {})",
                        known_rules.join(", ")
                    ));
                    continue;
                }
                if reason.trim().is_empty() {
                    problem(format!(
                        "suppression of `{rule}` has an empty reason; every \
                         suppression must say why the site is legitimate"
                    ));
                    continue;
                }
                if verb == "allow" {
                    let covered = if token.first_on_line {
                        next_code_line(tokens, index).unwrap_or(token.line)
                    } else {
                        token.line
                    };
                    spans.push(Span {
                        rule: rule.to_string(),
                        start: covered,
                        end: covered,
                    });
                } else {
                    open.push((rule.to_string(), token.line, token.column));
                }
            }
            "end" => {
                let rule = args.trim();
                if rule.is_empty() || rule.contains(',') {
                    problem(format!(
                        "`end(…)` takes exactly one rule name, got `{args}`"
                    ));
                    continue;
                }
                match open.iter().rposition(|(r, _, _)| r == rule) {
                    Some(at) => {
                        let (rule, start, _) = open.remove(at);
                        spans.push(Span {
                            rule,
                            start,
                            end: token.line,
                        });
                    }
                    None => problem(format!("`end({rule})` without a matching `begin({rule})`")),
                }
            }
            other => problem(format!(
                "unknown annotation verb `{other}` (expected `allow`, `begin` or `end`)"
            )),
        }
    }

    for (rule, line, column) in open {
        problems.push(Problem {
            line,
            column,
            message: format!("`begin({rule})` is never closed by an `end({rule})`"),
        });
    }

    (Suppressions { spans }, problems)
}

/// Split `verb(args)` into its parts; `None` when the shape is wrong.
fn split_call(text: &str) -> Option<(&str, &str)> {
    let open = text.find('(')?;
    let close = text.rfind(')')?;
    if close < open {
        return None;
    }
    let verb = text[..open].trim();
    // Trailing prose after the closing paren would be ambiguous — reject.
    if !text[close + 1..].trim().is_empty() || verb.is_empty() {
        return None;
    }
    Some((verb, &text[open + 1..close]))
}

/// Split `<rule>, reason = "…"` into the rule name and the reason text.
fn split_rule_and_reason(args: &str) -> Result<(&str, &str), String> {
    let Some((rule, reason_part)) = args.split_once(',') else {
        return Err(format!(
            "suppression `{args}` is missing its `reason = \"…\"`; every \
             suppression must say why the site is legitimate"
        ));
    };
    let rule = rule.trim();
    let reason_part = reason_part.trim();
    let Some(assigned) = reason_part
        .strip_prefix("reason")
        .map(|rest| rest.trim_start())
        .and_then(|rest| rest.strip_prefix('='))
    else {
        return Err(format!(
            "expected `reason = \"…\"` after the rule name, got `{reason_part}`"
        ));
    };
    let assigned = assigned.trim();
    let reason = assigned
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| format!("the reason must be a quoted string, got `{assigned}`"))?;
    Ok((rule, reason))
}

/// The line of the first non-comment token after `index` (what a
/// standalone `allow` covers).
fn next_code_line(tokens: &[Token], index: usize) -> Option<usize> {
    tokens[index + 1..]
        .iter()
        .find(|t| t.kind != TokenKind::Comment)
        .map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    const RULES: [&str; 3] = ["wall-clock", "rng-clone", "counter-name"];

    fn parse_src(source: &str) -> (Suppressions, Vec<Problem>) {
        parse(&tokenize(source), &RULES)
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "let a = 1;\nlet t = now(); // collie-lint: allow(wall-clock, reason = \"test\")\nlet b = 2;";
        let (sup, problems) = parse_src(src);
        assert!(problems.is_empty(), "{problems:?}");
        assert!(sup.covers("wall-clock", 2));
        assert!(!sup.covers("wall-clock", 1));
        assert!(!sup.covers("wall-clock", 3));
        assert!(!sup.covers("rng-clone", 2), "suppression is per-rule");
    }

    #[test]
    fn standalone_allow_covers_the_next_code_line() {
        let src = "// collie-lint: allow(wall-clock, reason = \"test\")\n// an unrelated comment in between\nlet t = now();\nlet b = 2;";
        let (sup, problems) = parse_src(src);
        assert!(problems.is_empty(), "{problems:?}");
        assert!(sup.covers("wall-clock", 3));
        assert!(!sup.covers("wall-clock", 4));
    }

    #[test]
    fn begin_end_covers_the_region() {
        let src = "\n// collie-lint: begin(rng-clone, reason = \"test region\")\nlet a = rng.clone();\nlet b = rng.clone();\n// collie-lint: end(rng-clone)\nlet c = rng.clone();";
        let (sup, problems) = parse_src(src);
        assert!(problems.is_empty(), "{problems:?}");
        assert!(sup.covers("rng-clone", 3));
        assert!(sup.covers("rng-clone", 4));
        assert!(!sup.covers("rng-clone", 6));
    }

    #[test]
    fn missing_reason_is_a_problem() {
        let (sup, problems) = parse_src("x(); // collie-lint: allow(wall-clock)");
        assert!(sup.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("reason"), "{problems:?}");
    }

    #[test]
    fn empty_reason_is_a_problem() {
        let (sup, problems) = parse_src("x(); // collie-lint: allow(wall-clock, reason = \"  \")");
        assert!(sup.is_empty());
        assert!(problems[0].message.contains("empty reason"), "{problems:?}");
    }

    #[test]
    fn unknown_rule_is_a_problem() {
        let (sup, problems) =
            parse_src("x(); // collie-lint: allow(wall-clcok, reason = \"typo\")");
        assert!(sup.is_empty());
        assert!(problems[0].message.contains("unknown rule"), "{problems:?}");
    }

    #[test]
    fn unmatched_begin_and_end_are_problems() {
        let (_, problems) = parse_src(
            "// collie-lint: begin(rng-clone, reason = \"never closed\")\nx();\n// collie-lint: end(counter-name)",
        );
        assert_eq!(problems.len(), 2, "{problems:?}");
        assert!(problems.iter().any(|p| p.message.contains("never closed")));
        assert!(problems
            .iter()
            .any(|p| p.message.contains("without a matching")));
    }

    #[test]
    fn annotations_inside_strings_are_inert() {
        let src = r##"let s = "// collie-lint: allow(wall-clock, reason = \"in a string\")";"##;
        let (sup, problems) = parse_src(src);
        assert!(sup.is_empty());
        assert!(problems.is_empty());
    }

    #[test]
    fn prose_mentioning_the_marker_is_not_an_annotation() {
        let src = "// the `collie-lint:` marker is described here\nx();";
        let (sup, problems) = parse_src(src);
        assert!(sup.is_empty());
        assert!(problems.is_empty());
    }

    #[test]
    fn garbage_after_the_marker_is_a_problem() {
        let (_, problems) = parse_src("// collie-lint: please ignore this line");
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("malformed"), "{problems:?}");
    }
}
