//! The linter's own acceptance gate: the workspace at HEAD lints clean.
//!
//! Every legitimate exception must carry its `collie-lint:` annotation
//! with a reason, so a clean run here means the contracts hold *and* the
//! escape hatches are all documented. If this test fails after an edit,
//! either the edit broke a determinism contract or it introduced a new
//! legitimate exception that needs annotating — both are exactly the
//! conversations the linter exists to force.

use collie_lint::report::validate_lint_report;
use collie_lint::{lint_workspace_dir, Options};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

#[test]
fn the_workspace_at_head_lints_clean() {
    let report = lint_workspace_dir(&repo_root(), &Options::default()).expect("lint run");
    assert!(
        report.violations.is_empty(),
        "collie-lint found violations at HEAD:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!(
                "  {}:{}:{} [{}] {}",
                v.file, v.line, v.column, v.rule, v.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(validate_lint_report(&report), Ok(()));
}

#[test]
fn the_head_scan_exercises_the_interesting_paths() {
    let report = lint_workspace_dir(&repo_root(), &Options::default()).expect("lint run");
    // The walker found the real workspace, not an empty directory.
    assert!(
        report.files_scanned > 30,
        "only {} files scanned",
        report.files_scanned
    );
    // The annotated profiling/speculation sites are actually being
    // suppressed (if this drops to 0 the annotations stopped matching and
    // the clean run above is vacuous).
    assert!(
        report.suppressed >= 10,
        "only {} suppressions took effect",
        report.suppressed
    );
    assert_eq!(report.rules_allowed, Vec::<String>::new());
    assert_eq!(report.rules_run.len(), collie_lint::rules::RULES.len());
}
